//! The client half of a served request: a [`ResponseStream`] of
//! [`StreamEvent`]s, terminated by exactly one `Finished` or `Error`.
//! Dropping the stream is cooperative cancellation — the worker retires
//! the request and reclaims its batch slot and KV cache.

use crate::session::GenResult;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// One event on a response stream. Every stream is a sequence of zero or
/// more non-terminal events (`Token`s, and for N-way requests `Sample`s)
/// followed by exactly one terminal event (`Finished` or `Error`);
/// tokens arrive as the decode steps that sampled them complete, not at
/// end of generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamEvent {
    /// One generated token of sample 0, streamed as its decode step
    /// completes.
    Token(usize),
    /// One completed extra sample of an N-way request
    /// ([`GenRequest::n_samples`](crate::GenRequest::n_samples) `> 1`),
    /// delivered whole as it finishes; `index` is the sample number in
    /// `1..n`. Non-terminal — the stream stays open until every sample
    /// (including sample 0, whose result is the `Finished` payload) is
    /// done.
    Sample {
        /// Sample number, `1..n` (sample 0 is the streamed-token one).
        index: usize,
        /// The sample's full result (prompt plus its continuation).
        result: GenResult,
    },
    /// Terminal: the request ran to its token budget; the payload is
    /// sample 0's result.
    Finished(GenResult),
    /// Terminal: the request died before finishing.
    Error(ServeError),
}

impl StreamEvent {
    /// Whether this event ends its stream.
    fn is_terminal(&self) -> bool {
        matches!(self, StreamEvent::Finished(_) | StreamEvent::Error(_))
    }
}

/// Why a stream terminated without a full result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The request's [`Deadline`](super::Deadline) expired before it
    /// finished. Tokens already streamed remain valid (a prefix of the
    /// deterministic output); the slot and KV cache were reclaimed.
    DeadlineExceeded,
    /// The worker thread panicked while handling this request; the
    /// payload is the panic message. Admission-time panics (e.g. a
    /// malformed prompt) fault only the offending stream.
    WorkerPanicked(String),
    /// The request was queued when the server's
    /// [`ShedPolicy`](super::ShedPolicy) started shedding its QoS
    /// class; it was retired at admission without running.
    Shed,
    /// The worker vanished without a terminal event (server bug or
    /// hard crash); the request's fate is unknown.
    Disconnected,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::DeadlineExceeded => write!(f, "deadline exceeded"),
            Self::WorkerPanicked(msg) => write!(f, "worker panicked: {msg}"),
            Self::Shed => write!(f, "shed under overload"),
            Self::Disconnected => write!(f, "server disconnected"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Router-side failover state, attached by
/// [`FleetHandle::submit_with`](crate::net::FleetHandle::submit_with)
/// when [`RequestOptions::failover`](super::RequestOptions) is set.
///
/// Determinism is what makes this sound: every worker generates the
/// bitwise-identical token sequence for the same request, so when the
/// serving worker dies the request is resubmitted to a survivor and the
/// replayed stream's already-delivered prefix (`delivered_tokens`
/// tokens of sample 0, plus any whole samples in `delivered_samples`)
/// is skipped — the consumer observes one uninterrupted, exactly-once
/// stream.
pub(crate) struct FailoverCtx {
    /// Resubmits the original request to a surviving worker, returning
    /// the replacement inner stream (`None` when no survivor accepted —
    /// the stream then terminates with the underlying error).
    pub(crate) resubmit: Arc<dyn Fn() -> Option<ResponseStream> + Send + Sync>,
    /// Tokens of sample 0 already delivered to the consumer.
    pub(crate) delivered_tokens: usize,
    /// Replayed tokens still to swallow before delivery resumes.
    pub(crate) skip_tokens: usize,
    /// Sample indices (N-way generation) already delivered whole.
    pub(crate) delivered_samples: Vec<usize>,
    /// Failover attempts left before the underlying error surfaces.
    pub(crate) attempts_left: usize,
}

impl std::fmt::Debug for FailoverCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FailoverCtx")
            .field("delivered_tokens", &self.delivered_tokens)
            .field("skip_tokens", &self.skip_tokens)
            .field("delivered_samples", &self.delivered_samples)
            .field("attempts_left", &self.attempts_left)
            .finish_non_exhaustive()
    }
}

/// What [`ResponseStream::sift`] decided about one raw event.
enum Sift {
    /// Hand the event to the consumer.
    Deliver(StreamEvent),
    /// Already delivered before a failover — swallow it.
    Skip,
    /// The inner stream was replaced; receive again.
    Swapped,
}

/// The receiving half of one generation request. Produced by
/// [`ServerHandle::submit`](super::ServerHandle::submit); events arrive
/// as the worker generates them. Dropping the stream (or calling
/// [`ResponseStream::cancel`]) retires the request server-side: its
/// batch slot and KV cache are reclaimed and no further work is spent on
/// it, without disturbing other streams.
#[derive(Debug)]
pub struct ResponseStream {
    pub(crate) rx: mpsc::Receiver<StreamEvent>,
    pub(crate) cancelled: Arc<AtomicBool>,
    pub(crate) terminated: bool,
    /// Present only on fleet streams submitted with
    /// [`RequestOptions::failover`](super::RequestOptions).
    pub(crate) failover: Option<FailoverCtx>,
}

impl ResponseStream {
    /// Routes one raw inner event through the failover filter. Without a
    /// [`FailoverCtx`] every event is delivered as-is.
    fn sift(&mut self, ev: StreamEvent) -> Sift {
        let Some(ctx) = self.failover.as_mut() else {
            return Sift::Deliver(ev);
        };
        match ev {
            StreamEvent::Token(t) => {
                if ctx.skip_tokens > 0 {
                    ctx.skip_tokens -= 1;
                    Sift::Skip
                } else {
                    ctx.delivered_tokens += 1;
                    Sift::Deliver(StreamEvent::Token(t))
                }
            }
            StreamEvent::Sample { index, result } => {
                if ctx.delivered_samples.contains(&index) {
                    Sift::Skip
                } else {
                    ctx.delivered_samples.push(index);
                    Sift::Deliver(StreamEvent::Sample { index, result })
                }
            }
            StreamEvent::Finished(res) => Sift::Deliver(StreamEvent::Finished(res)),
            StreamEvent::Error(err) => match err {
                // The worker died under this request (thread gone, or
                // its batch faulted): replay on a survivor.
                ServeError::Disconnected | ServeError::WorkerPanicked(_) => {
                    if self.swap_inner() {
                        Sift::Swapped
                    } else {
                        Sift::Deliver(StreamEvent::Error(err))
                    }
                }
                // Deadline expiry and shedding are policy outcomes, not
                // worker deaths — replaying would subvert them.
                ServeError::DeadlineExceeded | ServeError::Shed => {
                    Sift::Deliver(StreamEvent::Error(err))
                }
            },
        }
    }

    /// Attempts one failover: resubmit, then splice the fresh inner
    /// stream in place of the dead one. Returns `false` when attempts
    /// are exhausted or no survivor accepted.
    fn swap_inner(&mut self) -> bool {
        let Some(ctx) = self.failover.as_mut() else {
            return false;
        };
        if ctx.attempts_left == 0 {
            return false;
        }
        ctx.attempts_left -= 1;
        let Some(mut fresh) = (ctx.resubmit)() else {
            return false;
        };
        // Swallow the replay of everything already delivered.
        ctx.skip_tokens = ctx.delivered_tokens;
        std::mem::swap(&mut self.rx, &mut fresh.rx);
        std::mem::swap(&mut self.cancelled, &mut fresh.cancelled);
        // `fresh` now holds the dead request's channel and cancel flag;
        // dropping it marks the old request cancelled (harmless — it is
        // already gone with its worker).
        drop(fresh);
        true
    }

    /// Blocks for the next event. Returns `None` once a terminal event
    /// has been delivered. A worker that vanishes mid-stream surfaces as
    /// one final [`StreamEvent::Error`] ([`ServeError::Disconnected`]) —
    /// unless the stream was submitted with failover, in which case the
    /// request replays on a surviving worker and delivery resumes
    /// seamlessly where it left off.
    pub fn next_event(&mut self) -> Option<StreamEvent> {
        if self.terminated {
            return None;
        }
        loop {
            let ev = self
                .rx
                .recv()
                .unwrap_or(StreamEvent::Error(ServeError::Disconnected));
            match self.sift(ev) {
                Sift::Deliver(ev) => {
                    if ev.is_terminal() {
                        self.terminated = true;
                    }
                    return Some(ev);
                }
                Sift::Skip | Sift::Swapped => continue,
            }
        }
    }

    /// Non-blocking variant of [`ResponseStream::next_event`]: `None`
    /// when no event is ready yet *or* the stream has terminated.
    pub fn try_next(&mut self) -> Option<StreamEvent> {
        if self.terminated {
            return None;
        }
        loop {
            let ev = match self.rx.try_recv() {
                Ok(ev) => ev,
                Err(mpsc::TryRecvError::Empty) => return None,
                Err(mpsc::TryRecvError::Disconnected) => {
                    StreamEvent::Error(ServeError::Disconnected)
                }
            };
            match self.sift(ev) {
                Sift::Deliver(ev) => {
                    if ev.is_terminal() {
                        self.terminated = true;
                    }
                    return Some(ev);
                }
                Sift::Skip | Sift::Swapped => continue,
            }
        }
    }

    /// Blocks for the next event up to `timeout`; `None` on timeout or
    /// after termination. (Replay skips and failover swaps each restart
    /// the wait, so a failover-enabled stream can wait longer than
    /// `timeout` in total — per-delivery, not per-call.)
    pub fn recv_timeout(&mut self, timeout: Duration) -> Option<StreamEvent> {
        if self.terminated {
            return None;
        }
        loop {
            let ev = match self.rx.recv_timeout(timeout) {
                Ok(ev) => ev,
                Err(mpsc::RecvTimeoutError::Timeout) => return None,
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    StreamEvent::Error(ServeError::Disconnected)
                }
            };
            match self.sift(ev) {
                Sift::Deliver(ev) => {
                    if ev.is_terminal() {
                        self.terminated = true;
                    }
                    return Some(ev);
                }
                Sift::Skip | Sift::Swapped => continue,
            }
        }
    }

    /// Cancels the request without consuming the stream; equivalent to
    /// dropping it. Already-buffered events remain readable.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Drains the stream to completion, returning the final result (or
    /// the terminal error). The streamed tokens are exactly
    /// `result.tokens[prompt_len..]` — the same sequence the offline
    /// [`Session::run_to_completion`](crate::Session::run_to_completion)
    /// would produce for this request. Tokens already consumed via
    /// [`ResponseStream::next_event`] still appear in the result's
    /// `tokens`, so peek-then-collect is fine.
    pub fn collect(mut self) -> Result<GenResult, ServeError> {
        let mut streamed = Vec::new();
        while let Some(ev) = self.next_event() {
            match ev {
                StreamEvent::Token(t) => streamed.push(t),
                // Extra N-way samples are dropped here; use
                // `collect_samples` to keep them.
                StreamEvent::Sample { .. } => {}
                StreamEvent::Finished(res) => {
                    // Events peeked before `collect` are absent from
                    // `streamed`, so check suffix containment only.
                    debug_assert!(
                        res.tokens.ends_with(&streamed),
                        "streamed tokens must be a suffix of the final result"
                    );
                    return Ok(res);
                }
                StreamEvent::Error(e) => return Err(e),
            }
        }
        Err(ServeError::Disconnected)
    }

    /// Drains an N-way request to completion, returning every sample's
    /// result ordered by sample index — sample 0 (the streamed-token
    /// one, whose result is the `Finished` payload) first, then samples
    /// `1..n` from their [`StreamEvent::Sample`] events. A plain
    /// single-sample request yields a one-element vector.
    pub fn collect_samples(mut self) -> Result<Vec<GenResult>, ServeError> {
        let mut samples: Vec<(usize, GenResult)> = Vec::new();
        while let Some(ev) = self.next_event() {
            match ev {
                StreamEvent::Token(_) => {}
                StreamEvent::Sample { index, result } => samples.push((index, result)),
                StreamEvent::Finished(res) => {
                    samples.push((0, res));
                    samples.sort_by_key(|&(i, _)| i);
                    return Ok(samples.into_iter().map(|(_, r)| r).collect());
                }
                StreamEvent::Error(e) => return Err(e),
            }
        }
        Err(ServeError::Disconnected)
    }
}

/// Streams the events by blocking; ends after the terminal event.
impl Iterator for ResponseStream {
    type Item = StreamEvent;

    fn next(&mut self) -> Option<StreamEvent> {
        self.next_event()
    }
}

impl Drop for ResponseStream {
    fn drop(&mut self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }
}
