//! The client half of a served request: a [`ResponseStream`] of
//! [`StreamEvent`]s, terminated by exactly one `Finished` or `Error`.
//! Dropping the stream is cooperative cancellation — the worker retires
//! the request and reclaims its batch slot and KV cache.

use crate::session::GenResult;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// One event on a response stream. Every stream is a sequence of zero or
/// more non-terminal events (`Token`s, and for N-way requests `Sample`s)
/// followed by exactly one terminal event (`Finished` or `Error`);
/// tokens arrive as the decode steps that sampled them complete, not at
/// end of generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamEvent {
    /// One generated token of sample 0, streamed as its decode step
    /// completes.
    Token(usize),
    /// One completed extra sample of an N-way request
    /// ([`GenRequest::n_samples`](crate::GenRequest::n_samples) `> 1`),
    /// delivered whole as it finishes; `index` is the sample number in
    /// `1..n`. Non-terminal — the stream stays open until every sample
    /// (including sample 0, whose result is the `Finished` payload) is
    /// done.
    Sample {
        /// Sample number, `1..n` (sample 0 is the streamed-token one).
        index: usize,
        /// The sample's full result (prompt plus its continuation).
        result: GenResult,
    },
    /// Terminal: the request ran to its token budget; the payload is
    /// sample 0's result.
    Finished(GenResult),
    /// Terminal: the request died before finishing.
    Error(ServeError),
}

impl StreamEvent {
    /// Whether this event ends its stream.
    fn is_terminal(&self) -> bool {
        matches!(self, StreamEvent::Finished(_) | StreamEvent::Error(_))
    }
}

/// Why a stream terminated without a full result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The request's [`Deadline`](super::Deadline) expired before it
    /// finished. Tokens already streamed remain valid (a prefix of the
    /// deterministic output); the slot and KV cache were reclaimed.
    DeadlineExceeded,
    /// The worker thread panicked while handling this request; the
    /// payload is the panic message. Admission-time panics (e.g. a
    /// malformed prompt) fault only the offending stream.
    WorkerPanicked(String),
    /// The request was queued when the server's
    /// [`ShedPolicy`](super::ShedPolicy) started shedding its QoS
    /// class; it was retired at admission without running.
    Shed,
    /// The worker vanished without a terminal event (server bug or
    /// hard crash); the request's fate is unknown.
    Disconnected,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::DeadlineExceeded => write!(f, "deadline exceeded"),
            Self::WorkerPanicked(msg) => write!(f, "worker panicked: {msg}"),
            Self::Shed => write!(f, "shed under overload"),
            Self::Disconnected => write!(f, "server disconnected"),
        }
    }
}

impl std::error::Error for ServeError {}

/// The receiving half of one generation request. Produced by
/// [`ServerHandle::submit`](super::ServerHandle::submit); events arrive
/// as the worker generates them. Dropping the stream (or calling
/// [`ResponseStream::cancel`]) retires the request server-side: its
/// batch slot and KV cache are reclaimed and no further work is spent on
/// it, without disturbing other streams.
#[derive(Debug)]
pub struct ResponseStream {
    pub(crate) rx: mpsc::Receiver<StreamEvent>,
    pub(crate) cancelled: Arc<AtomicBool>,
    pub(crate) terminated: bool,
}

impl ResponseStream {
    /// Blocks for the next event. Returns `None` once a terminal event
    /// has been delivered. A worker that vanishes mid-stream surfaces as
    /// one final [`StreamEvent::Error`] ([`ServeError::Disconnected`]).
    pub fn next_event(&mut self) -> Option<StreamEvent> {
        if self.terminated {
            return None;
        }
        let ev = self
            .rx
            .recv()
            .unwrap_or(StreamEvent::Error(ServeError::Disconnected));
        if ev.is_terminal() {
            self.terminated = true;
        }
        Some(ev)
    }

    /// Non-blocking variant of [`ResponseStream::next_event`]: `None`
    /// when no event is ready yet *or* the stream has terminated.
    pub fn try_next(&mut self) -> Option<StreamEvent> {
        if self.terminated {
            return None;
        }
        match self.rx.try_recv() {
            Ok(ev) => {
                if ev.is_terminal() {
                    self.terminated = true;
                }
                Some(ev)
            }
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => {
                self.terminated = true;
                Some(StreamEvent::Error(ServeError::Disconnected))
            }
        }
    }

    /// Blocks for the next event up to `timeout`; `None` on timeout or
    /// after termination.
    pub fn recv_timeout(&mut self, timeout: Duration) -> Option<StreamEvent> {
        if self.terminated {
            return None;
        }
        match self.rx.recv_timeout(timeout) {
            Ok(ev) => {
                if ev.is_terminal() {
                    self.terminated = true;
                }
                Some(ev)
            }
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                self.terminated = true;
                Some(StreamEvent::Error(ServeError::Disconnected))
            }
        }
    }

    /// Cancels the request without consuming the stream; equivalent to
    /// dropping it. Already-buffered events remain readable.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Drains the stream to completion, returning the final result (or
    /// the terminal error). The streamed tokens are exactly
    /// `result.tokens[prompt_len..]` — the same sequence the offline
    /// [`Session::run_to_completion`](crate::Session::run_to_completion)
    /// would produce for this request. Tokens already consumed via
    /// [`ResponseStream::next_event`] still appear in the result's
    /// `tokens`, so peek-then-collect is fine.
    pub fn collect(mut self) -> Result<GenResult, ServeError> {
        let mut streamed = Vec::new();
        while let Some(ev) = self.next_event() {
            match ev {
                StreamEvent::Token(t) => streamed.push(t),
                // Extra N-way samples are dropped here; use
                // `collect_samples` to keep them.
                StreamEvent::Sample { .. } => {}
                StreamEvent::Finished(res) => {
                    // Events peeked before `collect` are absent from
                    // `streamed`, so check suffix containment only.
                    debug_assert!(
                        res.tokens.ends_with(&streamed),
                        "streamed tokens must be a suffix of the final result"
                    );
                    return Ok(res);
                }
                StreamEvent::Error(e) => return Err(e),
            }
        }
        Err(ServeError::Disconnected)
    }

    /// Drains an N-way request to completion, returning every sample's
    /// result ordered by sample index — sample 0 (the streamed-token
    /// one, whose result is the `Finished` payload) first, then samples
    /// `1..n` from their [`StreamEvent::Sample`] events. A plain
    /// single-sample request yields a one-element vector.
    pub fn collect_samples(mut self) -> Result<Vec<GenResult>, ServeError> {
        let mut samples: Vec<(usize, GenResult)> = Vec::new();
        while let Some(ev) = self.next_event() {
            match ev {
                StreamEvent::Token(_) => {}
                StreamEvent::Sample { index, result } => samples.push((index, result)),
                StreamEvent::Finished(res) => {
                    samples.push((0, res));
                    samples.sort_by_key(|&(i, _)| i);
                    return Ok(samples.into_iter().map(|(_, r)| r).collect());
                }
                StreamEvent::Error(e) => return Err(e),
            }
        }
        Err(ServeError::Disconnected)
    }
}

/// Streams the events by blocking; ends after the terminal event.
impl Iterator for ResponseStream {
    type Item = StreamEvent;

    fn next(&mut self) -> Option<StreamEvent> {
        self.next_event()
    }
}

impl Drop for ResponseStream {
    fn drop(&mut self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }
}
