//! Admission-side types: server configuration, backpressure policy,
//! per-request options, and the submit-time error surface.

use super::stream::StreamEvent;
use crate::prefix::PrefixCacheConfig;
use crate::session::{GenRequest, QosClass, QosShares};
use microscopiq_fm::KvMode;
use std::sync::atomic::AtomicBool;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// What [`ServerHandle::submit`](super::ServerHandle::submit) does when
/// the admission queue is full.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Block the submitting thread until a queue slot frees (classic
    /// backpressure: producers run at the server's pace).
    #[default]
    Block,
    /// Fail fast with [`SubmitError::QueueFull`], leaving the caller to
    /// shed or retry.
    Reject,
}

/// Configuration for [`Server::spawn`](super::Server::spawn).
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Requests packed into one decode step (forwarded to
    /// [`Session`](crate::Session)).
    pub max_batch: usize,
    /// Most prompt tokens one request advances per step while prefilling
    /// (forwarded to
    /// [`SchedulerConfig::prefill_chunk`](crate::SchedulerConfig)).
    /// The default ([`usize::MAX`]) runs each prompt as one segment;
    /// set a chunk size to stop long prompts from stalling live decode
    /// streams — exact-KV outputs are bitwise identical either way.
    pub prefill_chunk: usize,
    /// Most new tokens (prefill + decode) packed into one step
    /// (forwarded to
    /// [`SchedulerConfig::token_budget`](crate::SchedulerConfig)).
    pub token_budget: usize,
    /// Bounded admission-queue depth: submissions the worker has not yet
    /// pulled in. Once full, [`AdmissionPolicy`] decides what `submit`
    /// does.
    pub queue_capacity: usize,
    /// Cap on requests live inside the session at once (admitted but
    /// unfinished). The worker stops draining the admission queue at
    /// this level, which is what makes `queue_capacity` bite.
    pub max_in_flight: usize,
    /// Backpressure policy at the admission queue.
    pub admission: AdmissionPolicy,
    /// KV storage mode for every request's decode state.
    pub kv_mode: KvMode,
    /// Artificial delay between decode steps (default zero). Used by
    /// tests to widen race windows deterministically and by demos to
    /// make streaming visible; leave at zero to serve at full speed.
    pub pace: Duration,
    /// Server-side lifecycle recording (queue-wait/TTFT/inter-token
    /// histograms, outcome counters, per-token timestamping). On by
    /// default; turning it off exists so the `serving_load` bench can
    /// measure an uninstrumented baseline for the overhead gate.
    /// Scheduler and kernel counters are always on regardless (their
    /// cost is a few relaxed atomic ops per *step*, not per token), and
    /// [`ServerHandle`](super::ServerHandle) gauges keep working either
    /// way. Telemetry never perturbs numerics: token streams are
    /// bitwise identical whichever way this is set.
    pub telemetry: bool,
    /// Capacity of the opt-in trace ring buffer; 0 (the default)
    /// disables tracing entirely — no sink is allocated and the worker
    /// pays nothing. When positive, the worker records per-request span
    /// events and per-step scheduler events into a bounded ring
    /// (oldest dropped first), exported via
    /// [`ServerHandle::export_trace`](super::ServerHandle::export_trace)
    /// as Chrome trace-event JSON.
    pub trace_events: usize,
    /// Weighted guaranteed shares of batch slots / token budget per
    /// [`QosClass`] when classes compete (forwarded to
    /// [`SchedulerConfig::qos`](crate::SchedulerConfig)).
    pub qos: QosShares,
    /// Optional overload shedding. When set, the worker continuously
    /// grades its own per-class TTFT histograms and queue backlog
    /// against the policy and rejects lower QoS classes first; `None`
    /// (the default) never sheds.
    pub shed: Option<ShedPolicy>,
    /// Optional KV memory-pressure ceiling in storage bytes (see
    /// [`Session::set_kv_byte_budget`](crate::Session::set_kv_byte_budget)).
    /// When a step's worst-case KV growth would push occupancy past the
    /// budget, the worker preempts victims in QoS order — best-effort
    /// first, then batch, never interactive — releasing their KV and
    /// re-advancing them later as chunked recompute segments. Resumed
    /// streams are bitwise identical to unpreempted ones. Size it at
    /// least `max_batch × prefill_chunk × n_layers × 2 × d_model × 8`
    /// bytes above the working set you want to retain, or every step's
    /// projection will thrash the sheddable classes. `None` (the
    /// default) never preempts.
    pub kv_byte_budget: Option<usize>,
    /// Optional shared-prompt KV reuse (see
    /// [`Session::enable_prefix_cache`](crate::Session::enable_prefix_cache)):
    /// completed prompts are retained in a byte-budgeted prefix trie and
    /// later admissions attach the longest cached prefix copy-on-write,
    /// prefilling only the suffix. `None` (the default) serves every
    /// prompt cold.
    pub prefix_cache: Option<PrefixCacheConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_batch: 8,
            prefill_chunk: usize::MAX,
            token_budget: usize::MAX,
            queue_capacity: 64,
            max_in_flight: 64,
            admission: AdmissionPolicy::Block,
            kv_mode: KvMode::Exact,
            pace: Duration::ZERO,
            telemetry: true,
            trace_events: 0,
            qos: QosShares::default(),
            shed: None,
            kv_byte_budget: None,
            prefix_cache: None,
        }
    }
}

/// Load-shedding policy, evaluated by the worker between decode steps
/// from the server's *own* per-class latency histograms (the same ones
/// `/metrics` exposes) rather than blind queue length. The worker
/// publishes a shed level; submissions of sheddable classes are then
/// refused at the handle with [`SubmitError::Shed`] (and any already
/// queued are retired at admission with
/// [`ServeError::Shed`](super::ServeError::Shed)):
///
/// * level 1 — interactive p99 TTFT above `interactive_ttft_p99`, or
///   backlog above `queue_high`: shed [`QosClass::BestEffort`].
/// * level 2 — p99 above twice the target, or backlog above twice
///   `queue_high`: also shed [`QosClass::Batch`].
///
/// [`QosClass::Interactive`] is never shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShedPolicy {
    /// Target p99 enqueue-to-first-token latency for interactive
    /// traffic.
    pub interactive_ttft_p99: Duration,
    /// Interactive TTFT samples required before the latency trigger
    /// engages (the histogram is unreliable before that).
    pub min_samples: u64,
    /// Backlog high-water mark (admission queue + requests waiting or
    /// in flight in the session) for the queue-pressure trigger;
    /// [`usize::MAX`] (the default) disables it.
    pub queue_high: usize,
}

impl Default for ShedPolicy {
    fn default() -> Self {
        Self {
            interactive_ttft_p99: Duration::from_millis(500),
            min_samples: 32,
            queue_high: usize::MAX,
        }
    }
}

impl ShedPolicy {
    /// The lowest shed level at which `class` is refused;
    /// `u8::MAX` for classes that are never shed.
    pub(crate) fn shed_at(class: QosClass) -> u8 {
        match class {
            QosClass::Interactive => u8::MAX,
            QosClass::Batch => 2,
            QosClass::BestEffort => 1,
        }
    }
}

/// A per-request completion deadline, checked by the worker between
/// decode steps. An expired request is retired immediately — even before
/// its prefill has run — with
/// [`ServeError::DeadlineExceeded`](super::ServeError::DeadlineExceeded)
/// on its stream, and its KV cache is reclaimed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Deadline {
    /// Finish within this many scheduler steps of admission.
    /// `Steps(0)` expires before the request's first step (it is never
    /// prefilled) — deterministic, so tests use this form.
    Steps(usize),
    /// Finish before this wall-clock instant.
    At(Instant),
}

/// Options riding alongside a [`GenRequest`] through
/// [`ServerHandle::submit_with`](super::ServerHandle::submit_with).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestOptions {
    /// Optional completion deadline; `None` means the request may run to
    /// its token budget.
    pub deadline: Option<Deadline>,
    /// Opt-in deterministic failover, honored by
    /// [`FleetHandle::submit_with`](crate::net::FleetHandle::submit_with):
    /// if the serving worker dies mid-stream, the fleet resubmits the
    /// request to a survivor and the router-side stream splices the
    /// replayed continuation after skipping the already-delivered prefix
    /// — bitwise seamless, because any worker generates the identical
    /// token sequence for the same request. `false` (the default) keeps
    /// today's behavior: a dead worker faults the stream. Ignored on
    /// direct [`ServerHandle`](crate::ServerHandle) submissions — a
    /// single server has nowhere to fail over to.
    pub failover: bool,
}

/// Why a submission was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission queue is full and the policy is
    /// [`AdmissionPolicy::Reject`].
    QueueFull,
    /// The request's QoS class is being shed under the server's
    /// [`ShedPolicy`] (overload). Interactive requests never see this.
    Shed,
    /// The server has shut down.
    ServerClosed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::QueueFull => write!(f, "admission queue full"),
            Self::Shed => write!(f, "shed under overload"),
            Self::ServerClosed => write!(f, "server closed"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// One submission in flight from a client thread to the worker.
pub(crate) struct Incoming {
    pub(crate) req: GenRequest,
    pub(crate) opts: RequestOptions,
    pub(crate) events: mpsc::Sender<StreamEvent>,
    pub(crate) cancelled: Arc<AtomicBool>,
    /// Client-side enqueue instant, stamped in `submit` — the zero
    /// point for queue-wait and TTFT measurements.
    pub(crate) submitted: Instant,
}

/// What flows over the admission channel to the worker.
pub(crate) enum WorkerMsg {
    /// A client submission.
    Submit(Incoming),
    /// Failure-injection hook: the worker panics *outside* its per-step
    /// panic guard, killing the worker thread as an unexpected crash
    /// would. Used by the fleet chaos tests.
    InjectPanic,
    /// Replaces the prefix-cache byte budget (evicting down to it
    /// immediately); no-op when the cache is disabled. Shrinking to 0
    /// drains every unreferenced trie node — the bench and tests use
    /// this to prove nothing leaked after traffic retires.
    SetPrefixCapacity(usize),
}
