//! Batched TinyFM serving: a [`Session`] accepts concurrent generation
//! requests, and its internal [`BatchScheduler`] packs the active ones
//! into a single segment-packed forward pass per decode step, driving the
//! packed model end-to-end through the engine.
//!
//! Decode is **incremental**: every request owns a
//! [`DecodeState`] (per-block appendable KV caches). The first step a
//! request is scheduled runs its whole prompt as a prefill segment; every
//! later step feeds exactly one token — the previously sampled one — so
//! per-step work is O(prefix) instead of the O(prefix²) of full-prefix
//! recompute. Prefill segments and single-token decode segments ride in
//! the *same* segment-packed forward, so a step is always one engine pass.
//!
//! Scheduling is continuous ("in-flight") batching: every step takes up to
//! `max_batch` live requests in arrival order, runs one batched forward,
//! samples one token per request with that request's own seeded RNG, and
//! retires requests as they hit their token budget — freeing batch slots
//! for queued requests mid-flight, exactly like a serving system draining
//! a request queue. [`Session::step`] returns the requests that finished
//! on that step, so callers can stream completions without polling.
//!
//! Determinism contract: a request's output depends only on the model, its
//! prompt, its sampling seed, its temperature, and the session's KV mode —
//! never on what it was batched with. In the default [`KvMode::Exact`],
//! incremental decode is bit-identical to a solo full-prefix forward; in
//! [`KvMode::Quantized`] aged cache tokens are served dequantized
//! (bounded attention error, see `microscopiq_core::kv_cache`).

use microscopiq_core::error::QuantError;
use microscopiq_fm::{sample_logits, DecodeJob, DecodeState, KvMode, PackedGemm, PackedTinyFm};
use microscopiq_linalg::SeededRng;
use std::collections::VecDeque;

/// One generation request.
#[derive(Debug, Clone)]
pub struct GenRequest {
    /// Prompt tokens (must be non-empty and in-vocabulary).
    pub prompt: Vec<usize>,
    /// Number of tokens to generate after the prompt.
    pub max_new_tokens: usize,
    /// Softmax temperature for sampling.
    pub temperature: f64,
    /// Sampling seed; identical (model, prompt, seed, temperature) yield
    /// identical outputs regardless of batching.
    pub seed: u64,
}

/// Identifier assigned by [`Session::submit`], in submission order.
pub type RequestId = usize;

/// A finished request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenResult {
    /// The request's id.
    pub id: RequestId,
    /// Prompt plus generated tokens.
    pub tokens: Vec<usize>,
    /// How many tokens were generated.
    pub new_tokens: usize,
}

/// Scheduler counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Batched decode steps executed.
    pub steps: usize,
    /// Tokens generated across all requests.
    pub tokens_generated: usize,
    /// Largest batch actually executed.
    pub max_batch_used: usize,
    /// Prompt tokens processed as prefill segments.
    pub prefill_tokens: usize,
    /// Requests removed via [`Session::cancel`] before finishing.
    pub cancelled: usize,
}

/// Everything one decode step did: the token sampled for every scheduled
/// request (batch order) plus the requests that finished. A serving
/// front-end streams `emitted` to per-request clients as the step
/// completes; [`Session::step`] is the finished-only view.
#[derive(Debug, Clone, Default)]
pub struct StepReport {
    /// `(request, sampled token)` for every request that rode this step.
    pub emitted: Vec<(RequestId, usize)>,
    /// Requests that finished on this step (plus zero-budget submissions
    /// completed since the last step), sorted by id.
    pub finished: Vec<GenResult>,
}

#[derive(Debug)]
struct InFlight {
    id: RequestId,
    tokens: Vec<usize>,
    prompt_len: usize,
    remaining: usize,
    temperature: f64,
    rng: SeededRng,
    /// Incremental decode state; created (and prefilled) the first step
    /// this request is scheduled.
    state: Option<DecodeState>,
}

/// Packs pending requests into decode batches (arrival order, bounded by
/// `max_batch`).
#[derive(Debug)]
pub struct BatchScheduler {
    queue: VecDeque<InFlight>,
    max_batch: usize,
}

impl BatchScheduler {
    /// Creates a scheduler batching at most `max_batch` requests per step.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch == 0`.
    pub fn new(max_batch: usize) -> Self {
        assert!(max_batch > 0, "batch size must be positive");
        Self {
            queue: VecDeque::new(),
            max_batch,
        }
    }

    fn push(&mut self, req: InFlight) {
        self.queue.push_back(req);
    }

    fn take_batch(&mut self) -> Vec<InFlight> {
        let n = self.queue.len().min(self.max_batch);
        self.queue.drain(..n).collect()
    }

    /// Requests waiting or in flight.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

/// A serving session over one packed model and one engine.
#[derive(Debug)]
pub struct Session<E: PackedGemm> {
    model: PackedTinyFm,
    engine: E,
    scheduler: BatchScheduler,
    kv_mode: KvMode,
    next_id: RequestId,
    finished: Vec<GenResult>,
    stats: SessionStats,
}

impl<E: PackedGemm> Session<E> {
    /// Creates a session serving `model` through `engine`, batching up to
    /// `max_batch` concurrent requests per decode step. KV caches stay at
    /// full precision ([`KvMode::Exact`]): outputs are bit-identical to
    /// solo full-prefix generation.
    pub fn new(model: PackedTinyFm, engine: E, max_batch: usize) -> Self {
        Self::with_kv_mode(model, engine, max_batch, KvMode::Exact)
            .expect("exact KV mode is always valid")
    }

    /// Creates a session with an explicit KV storage mode.
    /// [`KvMode::Quantized`] stores aged cache tokens at the configured
    /// bit width (KIVI-style), shrinking decode-time memory traffic at a
    /// bounded attention-error cost.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidConfig`] for an invalid quantized KV
    /// configuration (zero group size).
    pub fn with_kv_mode(
        model: PackedTinyFm,
        engine: E,
        max_batch: usize,
        kv_mode: KvMode,
    ) -> Result<Self, QuantError> {
        // Validate the mode once up front so `step` can't fail later.
        DecodeState::new(model.config(), kv_mode)?;
        Ok(Self {
            model,
            engine,
            scheduler: BatchScheduler::new(max_batch),
            kv_mode,
            next_id: 0,
            finished: Vec::new(),
            stats: SessionStats::default(),
        })
    }

    /// The session's KV storage mode.
    pub fn kv_mode(&self) -> KvMode {
        self.kv_mode
    }

    /// The engine (for cache statistics etc.).
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// The packed model being served.
    pub fn model(&self) -> &PackedTinyFm {
        &self.model
    }

    /// Scheduler counters so far.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Requests admitted and not yet finished (waiting or in flight).
    pub fn pending(&self) -> usize {
        self.scheduler.pending()
    }

    /// Whether request `id` is still live: waiting in the scheduler
    /// queue, or finished-but-undrained (zero-budget submissions before
    /// the next [`Session::step`]).
    pub fn is_live(&self, id: RequestId) -> bool {
        self.scheduler.queue.iter().any(|r| r.id == id) || self.finished.iter().any(|r| r.id == id)
    }

    /// Enqueues a request, returning its id. Requests with a zero token
    /// budget finish immediately.
    ///
    /// # Panics
    ///
    /// Panics if the prompt is empty or contains out-of-vocabulary tokens.
    pub fn submit(&mut self, req: GenRequest) -> RequestId {
        assert!(!req.prompt.is_empty(), "prompt must be non-empty");
        let vocab = self.model.config().vocab;
        assert!(
            req.prompt.iter().all(|&t| t < vocab),
            "prompt token out of vocabulary"
        );
        let id = self.next_id;
        self.next_id += 1;
        if req.max_new_tokens == 0 {
            self.finished.push(GenResult {
                id,
                tokens: req.prompt,
                new_tokens: 0,
            });
            return id;
        }
        self.scheduler.push(InFlight {
            id,
            prompt_len: req.prompt.len(),
            tokens: req.prompt,
            remaining: req.max_new_tokens,
            temperature: req.temperature,
            rng: SeededRng::new(req.seed),
            state: None,
        });
        id
    }

    /// Removes a live request before it finishes, releasing its batch
    /// slot and KV cache immediately. Returns `false` if `id` is not
    /// live (unknown, already finished, or already cancelled). A
    /// zero-budget request whose result is still waiting to drain
    /// through [`Session::step`] is also cancellable — its result is
    /// discarded.
    pub fn cancel(&mut self, id: RequestId) -> bool {
        if let Some(pos) = self.scheduler.queue.iter().position(|r| r.id == id) {
            // Dropping the InFlight drops its DecodeState: the KV cache
            // is reclaimed now, not at some later step.
            self.scheduler.queue.remove(pos);
            self.stats.cancelled += 1;
            return true;
        }
        if let Some(pos) = self.finished.iter().position(|r| r.id == id) {
            self.finished.remove(pos);
            self.stats.cancelled += 1;
            return true;
        }
        false
    }

    /// Total K/V rows held by live requests across all layers — the KV
    /// occupancy a serving front-end budgets against. Finished and
    /// cancelled requests release their rows eagerly (within the same
    /// [`Session::step`] call that retires them), so an idle session
    /// always reports 0.
    pub fn kv_occupancy(&self) -> usize {
        self.scheduler
            .queue
            .iter()
            .map(|r| r.state.as_ref().map_or(0, |s| s.kv_rows()))
            .sum()
    }

    /// KV storage bytes held by live requests (see
    /// [`microscopiq_fm::DecodeState::kv_bytes`]).
    pub fn kv_occupancy_bytes(&self) -> usize {
        self.scheduler
            .queue
            .iter()
            .map(|r| r.state.as_ref().map_or(0, |s| s.kv_bytes()))
            .sum()
    }

    /// Runs one batched decode step over up to `max_batch` live requests:
    /// one segment-packed forward (a whole-prompt prefill segment the
    /// first time a request is scheduled, a single-token segment on every
    /// later step), one sampled token per request. Returns the requests
    /// that **finished** on this step (plus any zero-budget submissions
    /// that completed instantly since the last step), sorted by id —
    /// empty when nothing finished or the session is idle.
    pub fn step(&mut self) -> Vec<GenResult> {
        self.step_report().finished
    }

    /// Like [`Session::step`], but also reports the token sampled for
    /// every request that rode the step — the hook a streaming server
    /// uses to push tokens to clients as they are generated.
    pub fn step_report(&mut self) -> StepReport {
        // Instantly-finished (zero-budget) requests drain through the
        // next step so streaming callers see every completion.
        let mut done = std::mem::take(&mut self.finished);
        let mut emitted = Vec::new();
        let mut batch = self.scheduler.take_batch();
        if !batch.is_empty() {
            for req in batch.iter_mut() {
                if req.state.is_none() {
                    let state = DecodeState::new(self.model.config(), self.kv_mode)
                        .expect("kv mode validated at construction");
                    self.stats.prefill_tokens += req.tokens.len();
                    req.state = Some(state);
                }
            }
            let mut jobs: Vec<DecodeJob<'_>> = batch
                .iter_mut()
                .map(|req| {
                    let InFlight { state, tokens, .. } = req;
                    let state = state.as_mut().expect("state created above");
                    // New tokens = whatever the cache hasn't seen: the
                    // whole prompt at prefill, exactly one token after.
                    let tokens = &tokens[state.len()..];
                    DecodeJob { state, tokens }
                })
                .collect();
            let logits = self.model.advance_batch(&mut jobs, &self.engine);
            drop(jobs);
            self.stats.steps += 1;
            self.stats.max_batch_used = self.stats.max_batch_used.max(batch.len());
            let mut generated = 0;
            for (req, logit) in batch.iter_mut().zip(logits.iter()) {
                let last = logit.col(logit.cols() - 1);
                let tok = sample_logits(&last, req.temperature, &mut req.rng);
                req.tokens.push(tok);
                req.remaining -= 1;
                emitted.push((req.id, tok));
                generated += 1;
            }
            self.stats.tokens_generated += generated;
            // Retire finished requests; the rest return to the queue's
            // front in order, keeping arrival-order fairness.
            for req in batch.into_iter().rev() {
                if req.remaining == 0 {
                    let InFlight {
                        id,
                        tokens,
                        prompt_len,
                        state,
                        ..
                    } = req;
                    // Release the KV cache *before* reporting: finished
                    // requests must never count against occupancy once
                    // their result is visible to the caller.
                    drop(state);
                    done.push(GenResult {
                        id,
                        new_tokens: tokens.len() - prompt_len,
                        tokens,
                    });
                } else {
                    self.scheduler.queue.push_front(req);
                }
            }
        }
        done.sort_by_key(|r| r.id);
        StepReport {
            emitted,
            finished: done,
        }
    }

    /// Drives decode steps until every submitted request has finished,
    /// returning all results sorted by request id. Built on
    /// [`Session::step`] — callers that want completions as they happen
    /// can drive `step` themselves.
    pub fn run_to_completion(&mut self) -> Vec<GenResult> {
        let mut out = Vec::new();
        loop {
            out.extend(self.step());
            if self.scheduler.pending() == 0 && self.finished.is_empty() {
                break;
            }
        }
        out.sort_by_key(|r| r.id);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microscopiq_core::{MicroScopiQ, QuantConfig};
    use microscopiq_fm::{DequantGemm, TinyFm, TinyFmConfig};

    fn packed_model(seed: u64) -> (TinyFm, PackedTinyFm) {
        let cfg = TinyFmConfig {
            d_model: 32,
            n_heads: 2,
            d_ff: 64,
            n_layers: 2,
            vocab: 64,
        };
        let fm = TinyFm::teacher(cfg, seed);
        let mut rng = SeededRng::new(11);
        let calib: Vec<Vec<usize>> = (0..3).map(|_| fm.generate(8, 0.8, &mut rng)).collect();
        let q = MicroScopiQ::new(
            QuantConfig::w4()
                .macro_block(32)
                .row_block(32)
                .build()
                .unwrap(),
        );
        let packed = PackedTinyFm::quantize_from(&fm, &q, &calib).unwrap();
        (fm, packed)
    }

    /// Reference: generate one request alone through the same engine type,
    /// re-running the full prefix every step (the pre-incremental path).
    fn solo_generate(model: &PackedTinyFm, req: &GenRequest) -> Vec<usize> {
        let mut tokens = req.prompt.clone();
        let mut rng = SeededRng::new(req.seed);
        for _ in 0..req.max_new_tokens {
            let logits = model.forward(&tokens, &DequantGemm);
            let t = tokens.len() - 1;
            tokens.push(microscopiq_fm::sample_token(
                &logits,
                t,
                req.temperature,
                &mut rng,
            ));
        }
        tokens
    }

    #[test]
    fn batched_serving_matches_solo_generation() {
        let (_, packed) = packed_model(31);
        let reqs: Vec<GenRequest> = (0..5)
            .map(|i| GenRequest {
                prompt: vec![1 + i, 2 + i, 3],
                max_new_tokens: 4 + i,
                temperature: 0.8,
                seed: 100 + i as u64,
            })
            .collect();
        let expected: Vec<Vec<usize>> = reqs.iter().map(|r| solo_generate(&packed, r)).collect();

        let mut session = Session::new(packed, DequantGemm, 3);
        for r in &reqs {
            session.submit(r.clone());
        }
        let results = session.run_to_completion();
        assert_eq!(results.len(), reqs.len());
        for (res, expect) in results.iter().zip(expected.iter()) {
            assert_eq!(&res.tokens, expect, "request {} diverged in batch", res.id);
        }
        let stats = session.stats();
        assert!(stats.max_batch_used > 1, "scheduler must actually batch");
        assert_eq!(
            stats.tokens_generated,
            reqs.iter().map(|r| r.max_new_tokens).sum::<usize>()
        );
    }

    #[test]
    fn continuous_batching_backfills_queue_slots() {
        let (_, packed) = packed_model(32);
        let mut session = Session::new(packed, DequantGemm, 2);
        // Three requests, batch cap 2: the third rides once a slot frees.
        for i in 0..3 {
            session.submit(GenRequest {
                prompt: vec![i + 1],
                max_new_tokens: 2,
                temperature: 0.7,
                seed: i as u64,
            });
        }
        let results = session.run_to_completion();
        assert_eq!(results.len(), 3);
        assert_eq!(session.stats().max_batch_used, 2);
        for r in results {
            assert_eq!(r.tokens.len(), 3, "prompt 1 + generated 2");
        }
    }

    #[test]
    fn zero_budget_requests_finish_immediately() {
        let (_, packed) = packed_model(33);
        let mut session = Session::new(packed, DequantGemm, 2);
        let id = session.submit(GenRequest {
            prompt: vec![5, 6],
            max_new_tokens: 0,
            temperature: 1.0,
            seed: 1,
        });
        let results = session.run_to_completion();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].id, id);
        assert_eq!(results[0].tokens, vec![5, 6]);
        assert_eq!(session.stats().steps, 0);
    }

    #[test]
    fn step_streams_completions_as_they_finish() {
        let (_, packed) = packed_model(35);
        let mut session = Session::new(packed, DequantGemm, 4);
        // Budgets 1 and 3: the first request must surface from step() two
        // steps before the second.
        let ids: Vec<RequestId> = [1usize, 3]
            .iter()
            .map(|&budget| {
                session.submit(GenRequest {
                    prompt: vec![7, 8],
                    max_new_tokens: budget,
                    temperature: 0.8,
                    seed: budget as u64,
                })
            })
            .collect();
        let first = session.step();
        assert_eq!(first.len(), 1, "budget-1 request finishes on step 1");
        assert_eq!(first[0].id, ids[0]);
        assert_eq!(first[0].new_tokens, 1);
        assert!(session.step().is_empty(), "nothing finishes on step 2");
        let third = session.step();
        assert_eq!(third.len(), 1, "budget-3 request finishes on step 3");
        assert_eq!(third[0].id, ids[1]);
        assert!(session.step().is_empty(), "idle session streams nothing");
        assert_eq!(session.stats().steps, 3);
    }

    #[test]
    fn zero_budget_completions_drain_through_step() {
        let (_, packed) = packed_model(36);
        let mut session = Session::new(packed, DequantGemm, 2);
        let id = session.submit(GenRequest {
            prompt: vec![3],
            max_new_tokens: 0,
            temperature: 1.0,
            seed: 9,
        });
        let done = session.step();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, id);
        assert_eq!(session.stats().steps, 0, "no forward ran");
    }

    #[test]
    fn incremental_decode_prefills_once_per_request() {
        let (_, packed) = packed_model(37);
        let mut session = Session::new(packed, DequantGemm, 2);
        for i in 0..2 {
            session.submit(GenRequest {
                prompt: vec![1, 2, 3, 4],
                max_new_tokens: 5,
                temperature: 0.8,
                seed: i,
            });
        }
        session.run_to_completion();
        let stats = session.stats();
        assert_eq!(
            stats.prefill_tokens, 8,
            "each prompt prefilled exactly once"
        );
        assert_eq!(stats.tokens_generated, 10);
        // 5 steps: one prefill+sample step, then 4 single-token steps.
        assert_eq!(stats.steps, 5);
    }

    #[test]
    fn quantized_kv_session_serves_and_differs_only_in_cache_precision() {
        use microscopiq_fm::{KvCacheConfig, KvMode};

        let (_, packed) = packed_model(38);
        // A tiny residual window so quantization actually engages.
        let mode = KvMode::Quantized(KvCacheConfig {
            bits: 4,
            group: 8,
            residual: 8,
        });
        let mut session = Session::with_kv_mode(packed, DequantGemm, 2, mode).unwrap();
        let id = session.submit(GenRequest {
            prompt: vec![1, 2, 3],
            max_new_tokens: 24,
            temperature: 0.8,
            seed: 5,
        });
        let results = session.run_to_completion();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].id, id);
        assert_eq!(results[0].new_tokens, 24);
        let vocab = session.model().config().vocab;
        assert!(results[0].tokens.iter().all(|&t| t < vocab));
    }

    #[test]
    fn invalid_kv_mode_rejected_at_construction() {
        use microscopiq_fm::{KvCacheConfig, KvMode};

        let (_, packed) = packed_model(39);
        let bad = KvMode::Quantized(KvCacheConfig {
            bits: 2,
            group: 0,
            residual: 8,
        });
        assert!(Session::with_kv_mode(packed, DequantGemm, 2, bad).is_err());
    }

    #[test]
    fn step_report_emits_every_sampled_token() {
        let (_, packed) = packed_model(40);
        let mut session = Session::new(packed, DequantGemm, 4);
        let ids: Vec<RequestId> = (0..3)
            .map(|i| {
                session.submit(GenRequest {
                    prompt: vec![1 + i, 2],
                    max_new_tokens: 3,
                    temperature: 0.8,
                    seed: 70 + i as u64,
                })
            })
            .collect();
        let mut streamed: std::collections::HashMap<RequestId, Vec<usize>> =
            ids.iter().map(|&id| (id, Vec::new())).collect();
        let mut results = Vec::new();
        loop {
            let report = session.step_report();
            for (id, tok) in report.emitted {
                streamed.get_mut(&id).unwrap().push(tok);
            }
            results.extend(report.finished);
            if results.len() == ids.len() {
                break;
            }
        }
        for res in results {
            assert_eq!(
                streamed[&res.id],
                res.tokens[res.tokens.len() - res.new_tokens..],
                "per-step emission must reconstruct the generated suffix"
            );
        }
    }

    #[test]
    fn cancel_frees_slot_and_kv_cache() {
        let (_, packed) = packed_model(41);
        let layers = packed.config().n_layers;
        let mut session = Session::new(packed, DequantGemm, 2);
        let keep = session.submit(GenRequest {
            prompt: vec![1, 2],
            max_new_tokens: 4,
            temperature: 0.8,
            seed: 1,
        });
        let drop_id = session.submit(GenRequest {
            prompt: vec![3, 4, 5],
            max_new_tokens: 4,
            temperature: 0.8,
            seed: 2,
        });
        session.step();
        // Both prompts prefilled; each step's sampled token reaches the
        // cache on the *next* step it rides.
        assert_eq!(session.kv_occupancy(), (2 + 3) * layers);
        assert!(session.kv_occupancy_bytes() > 0);
        assert!(session.cancel(drop_id), "live request cancels");
        assert!(!session.cancel(drop_id), "second cancel is a no-op");
        assert_eq!(
            session.kv_occupancy(),
            2 * layers,
            "cancelled request's KV rows reclaimed immediately"
        );
        let results = session.run_to_completion();
        assert_eq!(results.len(), 1, "only the kept request finishes");
        assert_eq!(results[0].id, keep);
        assert_eq!(session.stats().cancelled, 1);
        assert_eq!(session.kv_occupancy(), 0);
    }

    #[test]
    fn finished_requests_release_kv_rows_eagerly() {
        let (_, packed) = packed_model(42);
        let layers = packed.config().n_layers;
        let mut session = Session::new(packed, DequantGemm, 2);
        session.submit(GenRequest {
            prompt: vec![1, 2, 3],
            max_new_tokens: 2,
            temperature: 0.8,
            seed: 3,
        });
        assert_eq!(session.kv_occupancy(), 0, "nothing prefilled yet");
        assert!(session.step().is_empty());
        assert_eq!(session.kv_occupancy(), 3 * layers);
        let done = session.step();
        assert_eq!(done.len(), 1);
        assert_eq!(
            session.kv_occupancy(),
            0,
            "KV rows must be released within the step that finishes the request"
        );
    }

    #[test]
    fn cancel_discards_pending_zero_budget_result() {
        let (_, packed) = packed_model(43);
        let mut session = Session::new(packed, DequantGemm, 2);
        let id = session.submit(GenRequest {
            prompt: vec![1],
            max_new_tokens: 0,
            temperature: 1.0,
            seed: 4,
        });
        assert!(session.cancel(id));
        assert!(session.step().is_empty(), "cancelled result never drains");
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn oov_prompt_is_rejected() {
        let (_, packed) = packed_model(34);
        let mut session = Session::new(packed, DequantGemm, 2);
        session.submit(GenRequest {
            prompt: vec![1_000_000],
            max_new_tokens: 1,
            temperature: 1.0,
            seed: 0,
        });
    }
}
