//! Batched TinyFM serving: a [`Session`] accepts concurrent generation
//! requests, and its internal [`BatchScheduler`] packs the active ones
//! into a single segment-packed forward pass per decode step, driving the
//! packed model end-to-end through the engine.
//!
//! Scheduling is continuous ("in-flight") batching: every step takes up to
//! `max_batch` live requests in arrival order, runs one batched forward,
//! samples one token per request with that request's own seeded RNG, and
//! retires requests as they hit their token budget — freeing batch slots
//! for queued requests mid-flight, exactly like a serving system draining
//! a request queue.
//!
//! Determinism contract: a request's output depends only on the model, its
//! prompt, its sampling seed, and its temperature — never on what it was
//! batched with. Segment packing keeps logits bit-identical to a solo
//! forward, and per-request RNGs keep sampling isolated.

use microscopiq_fm::{sample_token, PackedGemm, PackedTinyFm};
use microscopiq_linalg::SeededRng;
use std::collections::VecDeque;

/// One generation request.
#[derive(Debug, Clone)]
pub struct GenRequest {
    /// Prompt tokens (must be non-empty and in-vocabulary).
    pub prompt: Vec<usize>,
    /// Number of tokens to generate after the prompt.
    pub max_new_tokens: usize,
    /// Softmax temperature for sampling.
    pub temperature: f64,
    /// Sampling seed; identical (model, prompt, seed, temperature) yield
    /// identical outputs regardless of batching.
    pub seed: u64,
}

/// Identifier assigned by [`Session::submit`], in submission order.
pub type RequestId = usize;

/// A finished request.
#[derive(Debug, Clone)]
pub struct GenResult {
    /// The request's id.
    pub id: RequestId,
    /// Prompt plus generated tokens.
    pub tokens: Vec<usize>,
    /// How many tokens were generated.
    pub new_tokens: usize,
}

/// Scheduler counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Batched decode steps executed.
    pub steps: usize,
    /// Tokens generated across all requests.
    pub tokens_generated: usize,
    /// Largest batch actually executed.
    pub max_batch_used: usize,
}

#[derive(Debug)]
struct InFlight {
    id: RequestId,
    tokens: Vec<usize>,
    prompt_len: usize,
    remaining: usize,
    temperature: f64,
    rng: SeededRng,
}

/// Packs pending requests into decode batches (arrival order, bounded by
/// `max_batch`).
#[derive(Debug)]
pub struct BatchScheduler {
    queue: VecDeque<InFlight>,
    max_batch: usize,
}

impl BatchScheduler {
    /// Creates a scheduler batching at most `max_batch` requests per step.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch == 0`.
    pub fn new(max_batch: usize) -> Self {
        assert!(max_batch > 0, "batch size must be positive");
        Self {
            queue: VecDeque::new(),
            max_batch,
        }
    }

    fn push(&mut self, req: InFlight) {
        self.queue.push_back(req);
    }

    fn take_batch(&mut self) -> Vec<InFlight> {
        let n = self.queue.len().min(self.max_batch);
        self.queue.drain(..n).collect()
    }

    /// Requests waiting or in flight.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

/// A serving session over one packed model and one engine.
#[derive(Debug)]
pub struct Session<E: PackedGemm> {
    model: PackedTinyFm,
    engine: E,
    scheduler: BatchScheduler,
    next_id: RequestId,
    finished: Vec<GenResult>,
    stats: SessionStats,
}

impl<E: PackedGemm> Session<E> {
    /// Creates a session serving `model` through `engine`, batching up to
    /// `max_batch` concurrent requests per decode step.
    pub fn new(model: PackedTinyFm, engine: E, max_batch: usize) -> Self {
        Self {
            model,
            engine,
            scheduler: BatchScheduler::new(max_batch),
            next_id: 0,
            finished: Vec::new(),
            stats: SessionStats::default(),
        }
    }

    /// The engine (for cache statistics etc.).
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// The packed model being served.
    pub fn model(&self) -> &PackedTinyFm {
        &self.model
    }

    /// Scheduler counters so far.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Enqueues a request, returning its id. Requests with a zero token
    /// budget finish immediately.
    ///
    /// # Panics
    ///
    /// Panics if the prompt is empty or contains out-of-vocabulary tokens.
    pub fn submit(&mut self, req: GenRequest) -> RequestId {
        assert!(!req.prompt.is_empty(), "prompt must be non-empty");
        let vocab = self.model.config().vocab;
        assert!(
            req.prompt.iter().all(|&t| t < vocab),
            "prompt token out of vocabulary"
        );
        let id = self.next_id;
        self.next_id += 1;
        if req.max_new_tokens == 0 {
            self.finished.push(GenResult {
                id,
                tokens: req.prompt,
                new_tokens: 0,
            });
            return id;
        }
        self.scheduler.push(InFlight {
            id,
            prompt_len: req.prompt.len(),
            tokens: req.prompt,
            remaining: req.max_new_tokens,
            temperature: req.temperature,
            rng: SeededRng::new(req.seed),
        });
        id
    }

    /// Runs one batched decode step over up to `max_batch` live requests:
    /// one segment-packed forward, one sampled token per request. Returns
    /// the number of tokens generated (0 when idle).
    pub fn step(&mut self) -> usize {
        let mut batch = self.scheduler.take_batch();
        if batch.is_empty() {
            return 0;
        }
        let seqs: Vec<&[usize]> = batch.iter().map(|r| r.tokens.as_slice()).collect();
        let logits = self.model.forward_batch(&seqs, &self.engine);
        self.stats.steps += 1;
        self.stats.max_batch_used = self.stats.max_batch_used.max(batch.len());
        let mut generated = 0;
        for (req, logit) in batch.iter_mut().zip(logits.iter()) {
            let t = req.tokens.len() - 1;
            let tok = sample_token(logit, t, req.temperature, &mut req.rng);
            req.tokens.push(tok);
            req.remaining -= 1;
            generated += 1;
        }
        self.stats.tokens_generated += generated;
        // Retire finished requests; the rest return to the queue's front in
        // order, keeping arrival-order fairness.
        for req in batch.into_iter().rev() {
            if req.remaining == 0 {
                self.finished.push(GenResult {
                    id: req.id,
                    new_tokens: req.tokens.len() - req.prompt_len,
                    tokens: req.tokens,
                });
            } else {
                self.scheduler.queue.push_front(req);
            }
        }
        generated
    }

    /// Drives decode steps until every submitted request has finished,
    /// returning all results sorted by request id.
    pub fn run_to_completion(&mut self) -> Vec<GenResult> {
        while self.step() > 0 {}
        let mut out = std::mem::take(&mut self.finished);
        out.sort_by_key(|r| r.id);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microscopiq_core::{MicroScopiQ, QuantConfig};
    use microscopiq_fm::{DequantGemm, TinyFm, TinyFmConfig};

    fn packed_model(seed: u64) -> (TinyFm, PackedTinyFm) {
        let cfg = TinyFmConfig {
            d_model: 32,
            n_heads: 2,
            d_ff: 64,
            n_layers: 2,
            vocab: 64,
        };
        let fm = TinyFm::teacher(cfg, seed);
        let mut rng = SeededRng::new(11);
        let calib: Vec<Vec<usize>> = (0..3).map(|_| fm.generate(8, 0.8, &mut rng)).collect();
        let q = MicroScopiQ::new(
            QuantConfig::w4()
                .macro_block(32)
                .row_block(32)
                .build()
                .unwrap(),
        );
        let packed = PackedTinyFm::quantize_from(&fm, &q, &calib).unwrap();
        (fm, packed)
    }

    /// Reference: generate one request alone through the same engine type.
    fn solo_generate(model: &PackedTinyFm, req: &GenRequest) -> Vec<usize> {
        let mut tokens = req.prompt.clone();
        let mut rng = SeededRng::new(req.seed);
        for _ in 0..req.max_new_tokens {
            let logits = model.forward(&tokens, &DequantGemm);
            let t = tokens.len() - 1;
            tokens.push(sample_token(&logits, t, req.temperature, &mut rng));
        }
        tokens
    }

    #[test]
    fn batched_serving_matches_solo_generation() {
        let (_, packed) = packed_model(31);
        let reqs: Vec<GenRequest> = (0..5)
            .map(|i| GenRequest {
                prompt: vec![1 + i, 2 + i, 3],
                max_new_tokens: 4 + i,
                temperature: 0.8,
                seed: 100 + i as u64,
            })
            .collect();
        let expected: Vec<Vec<usize>> = reqs.iter().map(|r| solo_generate(&packed, r)).collect();

        let mut session = Session::new(packed, DequantGemm, 3);
        for r in &reqs {
            session.submit(r.clone());
        }
        let results = session.run_to_completion();
        assert_eq!(results.len(), reqs.len());
        for (res, expect) in results.iter().zip(expected.iter()) {
            assert_eq!(&res.tokens, expect, "request {} diverged in batch", res.id);
        }
        let stats = session.stats();
        assert!(stats.max_batch_used > 1, "scheduler must actually batch");
        assert_eq!(
            stats.tokens_generated,
            reqs.iter().map(|r| r.max_new_tokens).sum::<usize>()
        );
    }

    #[test]
    fn continuous_batching_backfills_queue_slots() {
        let (_, packed) = packed_model(32);
        let mut session = Session::new(packed, DequantGemm, 2);
        // Three requests, batch cap 2: the third rides once a slot frees.
        for i in 0..3 {
            session.submit(GenRequest {
                prompt: vec![i + 1],
                max_new_tokens: 2,
                temperature: 0.7,
                seed: i as u64,
            });
        }
        let results = session.run_to_completion();
        assert_eq!(results.len(), 3);
        assert_eq!(session.stats().max_batch_used, 2);
        for r in results {
            assert_eq!(r.tokens.len(), 3, "prompt 1 + generated 2");
        }
    }

    #[test]
    fn zero_budget_requests_finish_immediately() {
        let (_, packed) = packed_model(33);
        let mut session = Session::new(packed, DequantGemm, 2);
        let id = session.submit(GenRequest {
            prompt: vec![5, 6],
            max_new_tokens: 0,
            temperature: 1.0,
            seed: 1,
        });
        let results = session.run_to_completion();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].id, id);
        assert_eq!(results[0].tokens, vec![5, 6]);
        assert_eq!(session.stats().steps, 0);
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn oov_prompt_is_rejected() {
        let (_, packed) = packed_model(34);
        let mut session = Session::new(packed, DequantGemm, 2);
        session.submit(GenRequest {
            prompt: vec![1_000_000],
            max_new_tokens: 1,
            temperature: 1.0,
            seed: 0,
        });
    }
}
