//! Batched TinyFM serving: a [`Session`] accepts concurrent generation
//! requests, and its internal [`BatchScheduler`] packs the active ones
//! into a single segment-packed forward pass per decode step, driving the
//! packed model end-to-end through the engine.
//!
//! Decode is **incremental**: every request owns a
//! [`DecodeState`] (per-block appendable KV caches). A newly scheduled
//! request advances its prompt as prefill segments — the whole prompt in
//! one step by default, or in fixed-size chunks under
//! [`SchedulerConfig::prefill_chunk`] — and every step after prefill
//! feeds exactly one token, the previously sampled one, so per-step work
//! is O(prefix) instead of the O(prefix²) of full-prefix recompute.
//! Prefill chunks and single-token decode segments ride in the *same*
//! segment-packed forward, so a step is always one engine pass.
//!
//! **Chunked prefill** is what kills head-of-line blocking: without it,
//! one long prompt stalls every live decode stream for a full
//! quadratic-attention forward on its first step. With a chunk size (and
//! optionally a per-step [`SchedulerConfig::token_budget`] capping total
//! new tokens per forward), a long prompt is spread across many steps
//! while established streams keep emitting one token per step. Because
//! the attention math is causal and KV rows are appended token by token
//! either way, exact-KV chunked prefill is **bitwise identical** to
//! whole-prompt prefill for any chunk size — logits are only sampled on
//! the step that completes the prompt, with the request's own RNG, so
//! the draw sequence is unchanged. Chunking is a pure scheduling choice.
//! (This holds on any engine whose per-column results are independent of
//! batch composition — every bit-exact engine in this workspace. The f32
//! fast tier's lane GEMV accumulates in a different order than its
//! one-column GEMM, so there chunking can change logit *bits* when it
//! changes which path a step takes; that tier's contract is the bounded
//! logit-delta / argmax-parity conformance tier instead.)
//!
//! Scheduling is continuous ("in-flight") batching: every step takes up to
//! `max_batch` live requests in arrival order (bounded by the token
//! budget), runs one batched forward, samples one token per request whose
//! prefill is complete, and retires requests as they hit their token
//! budget — freeing batch slots for queued requests mid-flight, exactly
//! like a serving system draining a request queue. [`Session::step`]
//! returns the requests that finished on that step, so callers can stream
//! completions without polling.
//!
//! Determinism contract: a request's output depends only on the model, its
//! prompt, its sampling seed, its temperature, and the session's KV mode —
//! never on what it was batched with. In the default [`KvMode::Exact`],
//! incremental decode is bit-identical to a solo full-prefix forward; in
//! [`KvMode::Quantized`] aged cache tokens are served dequantized
//! (bounded attention error, see `microscopiq_core::kv_cache`).

use crate::prefix::{PrefixCache, PrefixCacheConfig, PrefixCacheStats, PrefixMatch, PrefixMetrics};
use crate::telemetry::{Counter, Gauge, Histogram, MetricsRegistry};
use microscopiq_core::error::QuantError;
use microscopiq_fm::{sample_logits, DecodeJob, DecodeState, KvMode, PackedGemm, PackedTinyFm};
use microscopiq_linalg::SeededRng;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Priority class of a request — the unit of QoS isolation. Classes are
/// a pure *scheduling* signal: they decide when a request's tokens are
/// computed, never which tokens (the determinism contract is
/// class-blind). [`BatchScheduler`] plans classes in priority order with
/// guaranteed weighted shares ([`QosShares`]), and the serving
/// front-end's load shedding rejects lower classes first.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum QosClass {
    /// Latency-sensitive traffic; planned first, never shed.
    #[default]
    Interactive,
    /// Throughput traffic; shed only under severe overload.
    Batch,
    /// Scavenger traffic; first to be shed, smallest guaranteed share.
    BestEffort,
}

impl QosClass {
    /// Every class, in scheduling priority order.
    pub const ALL: [QosClass; 3] = [QosClass::Interactive, QosClass::Batch, QosClass::BestEffort];

    /// Stable index (priority order) for per-class tables.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            QosClass::Interactive => 0,
            QosClass::Batch => 1,
            QosClass::BestEffort => 2,
        }
    }

    /// The metric-label / wire spelling of the class.
    pub fn label(self) -> &'static str {
        match self {
            QosClass::Interactive => "interactive",
            QosClass::Batch => "batch",
            QosClass::BestEffort => "best_effort",
        }
    }

    /// Parses the wire spelling (`best-effort` is accepted alongside
    /// `best_effort`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "interactive" => Some(QosClass::Interactive),
            "batch" => Some(QosClass::Batch),
            "best_effort" | "best-effort" => Some(QosClass::BestEffort),
            _ => None,
        }
    }
}

/// Relative token-budget weights per [`QosClass`] under contention.
/// When more than one class has pending work, each present class is
/// guaranteed `max(1, budget · weight / Σ present weights)` of the
/// per-step token budget (and the analogous share of batch slots)
/// before leftovers spill in priority order — so interactive traffic
/// dominates without ever starving batch or best-effort completely.
/// With a single class present the weights are irrelevant and planning
/// is exactly the historical FCFS behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QosShares {
    /// Weight of [`QosClass::Interactive`].
    pub interactive: u32,
    /// Weight of [`QosClass::Batch`].
    pub batch: u32,
    /// Weight of [`QosClass::BestEffort`].
    pub best_effort: u32,
}

impl Default for QosShares {
    fn default() -> Self {
        Self {
            interactive: 8,
            batch: 3,
            best_effort: 1,
        }
    }
}

/// One generation request.
#[derive(Debug, Clone, Default)]
pub struct GenRequest {
    /// Prompt tokens (must be non-empty and in-vocabulary).
    pub prompt: Vec<usize>,
    /// Number of tokens to generate after the prompt.
    pub max_new_tokens: usize,
    /// Softmax temperature for sampling.
    pub temperature: f64,
    /// Sampling seed; identical (model, prompt, seed, temperature) yield
    /// identical outputs regardless of batching.
    pub seed: u64,
    /// QoS class — scheduling priority and shed order only; never
    /// affects which tokens are generated.
    pub class: QosClass,
    /// Sampled continuations to generate from this one prompt (`0` and
    /// `1` both mean a single sample). With `n > 1` the request occupies
    /// `n` consecutive ids — [`Session::submit`] returns the first (the
    /// *leader*), samples `i = 1..n` get `leader + i`. All samples share
    /// one prefill: at prompt completion the leader's KV prefix is
    /// frozen into shared segments ([`DecodeState::share_prefix`]) and
    /// each fork diverges copy-on-write, drawing with seed `seed + i` —
    /// so in exact-KV mode on a bit-exact engine, sample `i`'s tokens
    /// are bitwise what a solo request with seed `seed + i` would have
    /// generated.
    pub n_samples: usize,
}

/// Identifier assigned by [`Session::submit`], in submission order.
pub type RequestId = usize;

/// A finished request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenResult {
    /// The request's id.
    pub id: RequestId,
    /// Prompt plus generated tokens.
    pub tokens: Vec<usize>,
    /// How many tokens were generated.
    pub new_tokens: usize,
}

/// Scheduler counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Batched decode steps executed.
    pub steps: usize,
    /// Tokens generated across all requests.
    pub tokens_generated: usize,
    /// Largest batch actually executed.
    pub max_batch_used: usize,
    /// Prompt tokens processed as prefill segments. Each prompt token is
    /// counted exactly once, on the step whose chunk advanced it —
    /// resuming a partially prefilled request never re-counts tokens.
    pub prefill_tokens: usize,
    /// Prefill segments executed: a whole-prompt prefill counts 1, a
    /// prompt split into n chunks counts n.
    pub prefill_chunks: usize,
    /// Requests removed via [`Session::cancel`] before finishing.
    pub cancelled: usize,
    /// Admissions that attached a non-empty cached prompt prefix (always
    /// 0 unless [`Session::enable_prefix_cache`] was called).
    pub prefix_hits: usize,
    /// Prompt tokens served from the prefix cache instead of prefilled.
    pub prefix_tokens_reused: usize,
    /// Requests preempted under the KV byte budget (or via
    /// [`Session::preempt`]), per [`QosClass::index`]. The budget policy
    /// never preempts interactive traffic, so index 0 stays 0 unless
    /// `preempt` was called directly.
    pub preemptions: [usize; 3],
    /// Tokens re-prefilled after preemption (prompt and generated tokens
    /// recomputed back into the KV cache). Disjoint from
    /// `prefill_tokens`: a token a preempted request re-advances counts
    /// here, never there.
    pub recompute_tokens: usize,
    /// Largest KV byte occupancy ever observed inside a step (measured
    /// after the forward, before finished requests release) — what
    /// [`Session::kv_byte_budget`] actually bounds.
    pub peak_kv_bytes: usize,
}

impl SessionStats {
    /// Total preemptions across all QoS classes.
    pub fn preempted(&self) -> usize {
        self.preemptions.iter().sum()
    }
}

/// Scheduling knobs for a [`Session`]'s [`BatchScheduler`].
///
/// The defaults reproduce classic whole-prompt continuous batching: every
/// newly scheduled request runs its entire prompt as one prefill segment.
/// Setting [`SchedulerConfig::prefill_chunk`] caps how many prompt tokens
/// one request may advance per step, and
/// [`SchedulerConfig::token_budget`] caps the total new tokens (prefill +
/// decode) packed into one forward — together they bound per-step latency
/// under long-prompt arrival. In [`KvMode::Exact`], on a bit-exact engine
/// (one whose GEMV entry matches a one-column GEMM bit for bit — the
/// default, scalar, and reference engines), every configuration produces
/// bitwise-identical outputs; only step timing changes. On the f32 fast
/// tier the guarantee is the serving conformance tier's instead (bounded
/// logit deltas, argmax parity — see `tests/fast_serving.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Requests packed into one decode step.
    pub max_batch: usize,
    /// Most prompt tokens a single request advances per step while
    /// prefilling ([`usize::MAX`] = the whole remaining prompt at once).
    pub prefill_chunk: usize,
    /// Most new tokens (prefill chunks plus single decode tokens, summed
    /// over the batch) one step may advance ([`usize::MAX`] = unbounded).
    /// Budget is consumed in queue order, so established decode streams
    /// at the queue front are served before prefill chunks behind them.
    pub token_budget: usize,
    /// Weighted guaranteed shares of slots and token budget per
    /// [`QosClass`] when classes compete (see [`QosShares`]). Irrelevant
    /// while only one class has pending work.
    pub qos: QosShares,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            max_batch: 8,
            prefill_chunk: usize::MAX,
            token_budget: usize::MAX,
            qos: QosShares::default(),
        }
    }
}

impl SchedulerConfig {
    /// Whole-prompt prefill with the given batch cap (the historical
    /// scheduler behavior).
    pub fn new(max_batch: usize) -> Self {
        Self {
            max_batch,
            ..Self::default()
        }
    }

    /// Sets the per-request prefill chunk size.
    pub fn prefill_chunk(mut self, tokens: usize) -> Self {
        self.prefill_chunk = tokens;
        self
    }

    /// Sets the per-step total new-token budget.
    pub fn token_budget(mut self, tokens: usize) -> Self {
        self.token_budget = tokens;
        self
    }

    /// Sets the per-class QoS share weights.
    pub fn qos(mut self, shares: QosShares) -> Self {
        self.qos = shares;
        self
    }

    fn validate(&self) {
        assert!(self.max_batch > 0, "batch size must be positive");
        assert!(self.prefill_chunk > 0, "prefill chunk must be positive");
        assert!(self.token_budget > 0, "token budget must be positive");
        assert!(
            self.qos.interactive > 0 && self.qos.batch > 0 && self.qos.best_effort > 0,
            "QoS share weights must be positive"
        );
    }
}

/// Everything one decode step did: the token sampled for every scheduled
/// request (batch order) plus the requests that finished. A serving
/// front-end streams `emitted` to per-request clients as the step
/// completes; [`Session::step`] is the finished-only view.
#[derive(Debug, Clone, Default)]
pub struct StepReport {
    /// `(request, sampled token)` for every request that rode this step.
    pub emitted: Vec<(RequestId, usize)>,
    /// Requests that finished on this step (plus zero-budget submissions
    /// completed since the last step), sorted by id.
    pub finished: Vec<GenResult>,
    /// Composition of the batch that ran, `None` when no forward pass
    /// executed (idle step, or only zero-budget completions drained).
    pub batch: Option<StepBatch>,
}

/// Composition of one executed decode step — what the scheduler packed
/// into the forward pass and the occupancy it left behind. This is the
/// per-step record behind the scheduler metrics and the `step` trace
/// events.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StepBatch {
    /// Requests that rode the step (prefill segments + decode segments).
    pub requests: usize,
    /// Requests that advanced a prefill chunk this step.
    pub prefill_chunks: usize,
    /// Prompt tokens advanced across those chunks.
    pub prefill_tokens: usize,
    /// Single-token decode segments in the batch.
    pub decode_segments: usize,
    /// Total new tokens the forward consumed (`prefill_tokens +
    /// decode_segments`) — compare against
    /// [`SchedulerConfig::token_budget`] for utilization.
    pub new_tokens: usize,
    /// Requests still waiting or in flight after the step.
    pub queue_depth: usize,
    /// KV rows resident after the step (finished requests released).
    pub kv_rows: usize,
    /// KV bytes resident after the step.
    pub kv_bytes: usize,
    /// Recompute segments in the batch: preempted requests re-advancing
    /// their prompt + generated history back into the KV cache.
    pub recompute_chunks: usize,
    /// Tokens advanced across those recompute segments.
    pub recompute_tokens: usize,
    /// `(request, tokens advanced)` for each prefill chunk in the batch,
    /// so a tracing front-end can emit per-request chunk spans.
    pub prefilled: Vec<(RequestId, usize)>,
    /// Requests per [`QosClass`] in the batch, indexed by
    /// [`QosClass::index`] — how the weighted shares actually landed.
    pub class_requests: [usize; 3],
}

#[derive(Debug)]
struct InFlight {
    id: RequestId,
    tokens: Vec<usize>,
    prompt_len: usize,
    remaining: usize,
    temperature: f64,
    class: QosClass,
    rng: SeededRng,
    /// Incremental decode state; created the first step this request is
    /// scheduled and advanced chunk by chunk until the prompt is done.
    state: Option<DecodeState>,
    /// Cached prompt prefix matched at admission (or re-matched at
    /// preemption), attached copy-on-write when the state is created
    /// (holding it keeps the segments alive across evictions). `None`
    /// once consumed or on a cache miss.
    attach: Option<PrefixMatch>,
    /// Set by [`Session::preempt`]: the request's KV cache was released
    /// and it is re-advancing its full history (prompt + generated
    /// tokens) as chunked recompute segments. Cleared on the step whose
    /// chunk catches the cache back up; while set, advanced tokens count
    /// as `recompute_tokens`, never `prefill_tokens`.
    recomputing: bool,
}

impl InFlight {
    /// Tokens already in the KV cache: the decode state's length once it
    /// exists, else the admission-time prefix match about to be attached
    /// — so the scheduler plans (and counts) only the suffix.
    fn prefilled(&self) -> usize {
        match &self.state {
            Some(s) => s.len(),
            None => self.attach.as_ref().map_or(0, |m| m.tokens),
        }
    }

    /// Whether the prompt is fully in the KV cache.
    fn prefill_done(&self) -> bool {
        self.prefilled() >= self.prompt_len
    }

    /// New tokens this request wants on its next step: the gap between
    /// its known tokens and its KV cache, chunk-capped. While prefilling
    /// (or recomputing after preemption) that is the next history chunk;
    /// in steady-state decode the gap is exactly one — the previously
    /// sampled token.
    fn step_tokens(&self, prefill_chunk: usize) -> usize {
        (self.tokens.len() - self.prefilled()).min(prefill_chunk)
    }
}

/// Packs pending requests into decode batches: arrival order within each
/// [`QosClass`], bounded by [`SchedulerConfig::max_batch`] requests and
/// [`SchedulerConfig::token_budget`] new tokens per step, advancing
/// prefills at most [`SchedulerConfig::prefill_chunk`] tokens at a time.
/// When more than one class has pending work, each present class is first
/// granted its weighted guaranteed share of slots and budget
/// ([`QosShares`], priority order), then leftovers spill in priority
/// order; with a single class present the plan is exactly the historical
/// FCFS plan.
#[derive(Debug)]
pub struct BatchScheduler {
    /// One FIFO per class, indexed by [`QosClass::index`].
    queues: [VecDeque<InFlight>; 3],
    cfg: SchedulerConfig,
}

impl BatchScheduler {
    /// Creates a whole-prompt scheduler batching at most `max_batch`
    /// requests per step — `Self::with_config(SchedulerConfig::new(..))`.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch == 0`.
    pub fn new(max_batch: usize) -> Self {
        Self::with_config(SchedulerConfig::new(max_batch))
    }

    /// Creates a scheduler with explicit chunking/budget knobs.
    ///
    /// # Panics
    ///
    /// Panics if any knob is zero.
    pub fn with_config(cfg: SchedulerConfig) -> Self {
        cfg.validate();
        Self {
            queues: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            cfg,
        }
    }

    fn push(&mut self, req: InFlight) {
        self.queues[req.class.index()].push_back(req);
    }

    /// Returns a mid-step request to the front of its class queue,
    /// preserving arrival order within the class.
    fn requeue_front(&mut self, req: InFlight) {
        self.queues[req.class.index()].push_front(req);
    }

    /// All pending requests, priority order across classes, arrival order
    /// within each class.
    fn iter(&self) -> impl Iterator<Item = &InFlight> {
        self.queues.iter().flat_map(|q| q.iter())
    }

    /// Mutable view of all pending requests, in the same order as
    /// [`BatchScheduler::iter`]. Queue membership and order are fixed;
    /// only request-internal state (e.g. a preemption releasing its
    /// [`DecodeState`]) may change.
    fn iter_mut(&mut self) -> impl Iterator<Item = &mut InFlight> {
        self.queues.iter_mut().flat_map(|q| q.iter_mut())
    }

    /// Removes and returns the pending request with the given id.
    fn remove(&mut self, id: RequestId) -> Option<InFlight> {
        for q in &mut self.queues {
            if let Some(pos) = q.iter().position(|r| r.id == id) {
                return q.remove(pos);
            }
        }
        None
    }

    /// Plans from one class queue: pops requests from its front while the
    /// global and per-class slot/token allowances all have room, deciding
    /// how many new tokens each rides with. Every planned request
    /// advances at least one token, so prefills always make progress; a
    /// request whose chunk would not fit the remaining allowance rides
    /// with the clipped chunk (any split is exact-KV-bitwise-safe).
    fn plan_from(
        &mut self,
        class: usize,
        mut class_slots: usize,
        mut class_tokens: usize,
        slots: &mut usize,
        budget: &mut usize,
        planned: &mut Vec<(InFlight, usize)>,
    ) {
        while *slots > 0 && *budget > 0 && class_slots > 0 && class_tokens > 0 {
            let Some(front) = self.queues[class].front() else {
                break;
            };
            let take = front
                .step_tokens(self.cfg.prefill_chunk)
                .min(*budget)
                .min(class_tokens);
            let req = self.queues[class].pop_front().expect("front exists");
            *slots -= 1;
            *budget -= take;
            class_slots -= 1;
            class_tokens = class_tokens.saturating_sub(take);
            planned.push((req, take));
        }
    }

    /// Plans one step. Pass 1 (only when classes compete) grants each
    /// present class `max(1, allowance · weight / Σ present weights)` of
    /// the batch slots and token budget, priority order; pass 2 spills
    /// whatever remains, priority order. Class never affects *which*
    /// tokens a request generates — only when they are computed.
    fn take_planned(&mut self) -> Vec<(InFlight, usize)> {
        let mut slots = self.cfg.max_batch;
        let mut budget = self.cfg.token_budget;
        let mut planned = Vec::new();
        let present: Vec<usize> = (0..3).filter(|&c| !self.queues[c].is_empty()).collect();
        if present.len() > 1 {
            let weights = [
                u64::from(self.cfg.qos.interactive),
                u64::from(self.cfg.qos.batch),
                u64::from(self.cfg.qos.best_effort),
            ];
            let total: u64 = present.iter().map(|&c| weights[c]).sum();
            // Shares come from the *initial* allowances so a lower
            // class's guarantee is not eroded by what higher classes
            // consumed first.
            let share = |allowance: usize, c: usize| -> usize {
                if allowance == usize::MAX {
                    // Unbounded allowances are shared by slots alone.
                    usize::MAX
                } else {
                    ((allowance as u64 * weights[c] / total).max(1)) as usize
                }
            };
            let shares: Vec<(usize, usize, usize)> = present
                .iter()
                .map(|&c| (c, share(slots, c), share(budget, c)))
                .collect();
            for (c, slot_share, token_share) in shares {
                self.plan_from(
                    c,
                    slot_share,
                    token_share,
                    &mut slots,
                    &mut budget,
                    &mut planned,
                );
            }
        }
        for &c in &present {
            self.plan_from(
                c,
                usize::MAX,
                usize::MAX,
                &mut slots,
                &mut budget,
                &mut planned,
            );
        }
        planned
    }

    /// Requests waiting or in flight.
    pub fn pending(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// Requests waiting or in flight in one class.
    pub fn pending_class(&self, class: QosClass) -> usize {
        self.queues[class.index()].len()
    }

    /// The scheduling knobs.
    pub fn config(&self) -> SchedulerConfig {
        self.cfg
    }
}

/// The session's always-on scheduler instruments, registered into its
/// [`MetricsRegistry`] at construction. Recording is a few relaxed
/// atomic ops per step — never a lock.
#[derive(Debug, Clone)]
struct SchedMetrics {
    steps: Arc<Counter>,
    prefill_chunks: Arc<Counter>,
    prefill_tokens: Arc<Counter>,
    tokens_generated: Arc<Counter>,
    cancelled: Arc<Counter>,
    batch_requests: Arc<Histogram>,
    step_new_tokens: Arc<Histogram>,
    queue_depth: Arc<Gauge>,
    kv_rows: Arc<Gauge>,
    kv_bytes: Arc<Gauge>,
    kv_peak_bytes: Arc<Gauge>,
    /// Per-[`QosClass`] series of `microscopiq_preemptions_total`.
    preemptions: [Arc<Counter>; 3],
    recompute_tokens: Arc<Counter>,
}

impl SchedMetrics {
    fn register(reg: &MetricsRegistry) -> Self {
        Self {
            steps: reg.counter(
                "microscopiq_scheduler_steps_total",
                "Batched decode steps executed (forward passes).",
            ),
            prefill_chunks: reg.counter(
                "microscopiq_prefill_chunks_total",
                "Prefill segments executed (whole-prompt counts 1, n chunks count n).",
            ),
            prefill_tokens: reg.counter(
                "microscopiq_prefill_tokens_total",
                "Prompt tokens processed as prefill, each counted once.",
            ),
            tokens_generated: reg.counter(
                "microscopiq_tokens_generated_total",
                "Tokens sampled across all requests.",
            ),
            cancelled: reg.counter(
                "microscopiq_scheduler_cancelled_total",
                "Requests removed from the scheduler before finishing.",
            ),
            batch_requests: reg.histogram(
                "microscopiq_step_batch_requests",
                "Requests packed into each executed step (prefill + decode segments).",
            ),
            step_new_tokens: reg.histogram(
                "microscopiq_step_new_tokens",
                "New tokens consumed per executed step (token-budget utilization).",
            ),
            queue_depth: reg.gauge(
                "microscopiq_scheduler_queue_depth",
                "Requests waiting or in flight in the batch scheduler.",
            ),
            kv_rows: reg.gauge(
                "microscopiq_kv_rows",
                "KV cache rows resident across live requests and layers.",
            ),
            kv_bytes: reg.gauge(
                "microscopiq_kv_bytes",
                "KV cache bytes resident across live requests.",
            ),
            kv_peak_bytes: reg.gauge(
                "microscopiq_kv_peak_bytes",
                "Largest KV byte occupancy ever observed inside a step (after the \
                 forward, before finished requests release).",
            ),
            preemptions: QosClass::ALL.map(|c| {
                reg.counter_labeled(
                    "microscopiq_preemptions_total",
                    "Requests preempted under the KV byte budget (KV released, \
                     re-enqueued for chunked recompute), by QoS class.",
                    vec![("class", c.label().to_string())],
                )
            }),
            recompute_tokens: reg.counter(
                "microscopiq_recompute_tokens_total",
                "Tokens re-prefilled after preemption (prompt + generated history \
                 recomputed back into the KV cache).",
            ),
        }
    }
}

/// A serving session over one packed model and one engine.
#[derive(Debug)]
pub struct Session<E: PackedGemm> {
    model: PackedTinyFm,
    engine: E,
    scheduler: BatchScheduler,
    kv_mode: KvMode,
    next_id: RequestId,
    finished: Vec<GenResult>,
    stats: SessionStats,
    telemetry: MetricsRegistry,
    metrics: SchedMetrics,
    /// Shared-prompt KV reuse, opt-in via
    /// [`Session::enable_prefix_cache`].
    prefix: Option<PrefixCache>,
    /// N-way fork groups awaiting their leader's prompt completion:
    /// leader id → `(sample id, sampling seed)` per pending follower.
    pending_forks: HashMap<RequestId, Vec<(RequestId, u64)>>,
    /// Memory-pressure ceiling, opt-in via
    /// [`Session::set_kv_byte_budget`]: before planning a step whose
    /// worst-case KV growth would push occupancy past this, victims are
    /// preempted in QoS order (best-effort → batch, interactive never).
    kv_byte_budget: Option<usize>,
}

impl<E: PackedGemm> Session<E> {
    /// Creates a session serving `model` through `engine`, batching up to
    /// `max_batch` concurrent requests per decode step. KV caches stay at
    /// full precision ([`KvMode::Exact`]): outputs are bit-identical to
    /// solo full-prefix generation.
    pub fn new(model: PackedTinyFm, engine: E, max_batch: usize) -> Self {
        Self::with_kv_mode(model, engine, max_batch, KvMode::Exact)
            .expect("exact KV mode is always valid")
    }

    /// Creates a session with an explicit KV storage mode.
    /// [`KvMode::Quantized`] stores aged cache tokens at the configured
    /// bit width (KIVI-style), shrinking decode-time memory traffic at a
    /// bounded attention-error cost.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidConfig`] for an invalid quantized KV
    /// configuration (zero group size).
    pub fn with_kv_mode(
        model: PackedTinyFm,
        engine: E,
        max_batch: usize,
        kv_mode: KvMode,
    ) -> Result<Self, QuantError> {
        Self::with_config(model, engine, SchedulerConfig::new(max_batch), kv_mode)
    }

    /// Creates a session with explicit scheduling knobs — chunked prefill
    /// ([`SchedulerConfig::prefill_chunk`]) and a per-step token budget
    /// ([`SchedulerConfig::token_budget`]) on top of the batch cap. In
    /// [`KvMode::Exact`], on a bit-exact engine, every configuration
    /// yields bitwise-identical outputs; chunking only changes how prompt
    /// work is spread across steps (see [`SchedulerConfig`] for the f32
    /// fast-tier caveat).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidConfig`] for an invalid quantized KV
    /// configuration (zero group size).
    ///
    /// # Panics
    ///
    /// Panics if any [`SchedulerConfig`] knob is zero.
    pub fn with_config(
        model: PackedTinyFm,
        engine: E,
        cfg: SchedulerConfig,
        kv_mode: KvMode,
    ) -> Result<Self, QuantError> {
        // Validate the mode once up front so `step` can't fail later.
        DecodeState::new(model.config(), kv_mode)?;
        let telemetry = MetricsRegistry::new();
        let metrics = SchedMetrics::register(&telemetry);
        Ok(Self {
            model,
            engine,
            scheduler: BatchScheduler::with_config(cfg),
            kv_mode,
            next_id: 0,
            finished: Vec::new(),
            stats: SessionStats::default(),
            telemetry,
            metrics,
            prefix: None,
            pending_forks: HashMap::new(),
            kv_byte_budget: None,
        })
    }

    /// Sets (or clears) the KV memory-pressure ceiling. Before each
    /// planned step, if current occupancy plus the step's worst-case KV
    /// growth would exceed the budget, the session preempts victims —
    /// [`QosClass::BestEffort`] first, then [`QosClass::Batch`], never
    /// [`QosClass::Interactive`] — releasing their [`DecodeState`] and
    /// re-advancing them later as chunked recompute segments through the
    /// prefix cache. Preemption is invisible in the token streams:
    /// the victim's RNG and sampled history are retained, so its
    /// resumed output is bitwise identical to an unpreempted run (the
    /// same argument as chunked prefill). When every sheddable victim
    /// is already released and interactive demand alone exceeds the
    /// budget, the step runs anyway — the budget bounds reclaimable
    /// pressure, it never starves interactive traffic.
    pub fn set_kv_byte_budget(&mut self, budget: Option<usize>) {
        self.kv_byte_budget = budget;
    }

    /// The KV memory-pressure ceiling, if set.
    pub fn kv_byte_budget(&self) -> Option<usize> {
        self.kv_byte_budget
    }

    /// Enables shared-prompt KV reuse: completed prompts are frozen into
    /// a byte-budgeted prefix trie ([`PrefixCache`]) and later
    /// admissions attach the longest cached prefix copy-on-write,
    /// prefilling only the suffix. Metrics register as the
    /// `microscopiq_prefix_cache_*` family in the session registry. In
    /// [`KvMode::Exact`] reuse is bitwise invisible; in
    /// [`KvMode::Quantized`] it stays inside the bounded-attention-error
    /// contract (group-aligned, quantize-once segments only). Call
    /// before submitting traffic; re-enabling replaces the cache.
    pub fn enable_prefix_cache(&mut self, cfg: PrefixCacheConfig) {
        self.prefix = Some(PrefixCache::with_metrics(
            cfg,
            self.model.config().n_layers,
            self.kv_mode,
            &self.telemetry,
        ));
    }

    /// Prefix-cache counters and residency, `None` unless
    /// [`Session::enable_prefix_cache`] was called.
    pub fn prefix_cache_stats(&self) -> Option<PrefixCacheStats> {
        self.prefix.as_ref().map(|c| c.stats())
    }

    /// Replaces the prefix-cache byte budget, evicting down to it
    /// immediately (shrinking to 0 drains every unreferenced node).
    /// No-op when the cache is disabled.
    pub fn set_prefix_cache_capacity(&mut self, capacity_bytes: usize) {
        if let Some(cache) = self.prefix.as_mut() {
            cache.set_capacity(capacity_bytes);
        }
    }

    /// The prefix cache's shared metric handles, for front-ends that
    /// read stats without crossing into the worker thread.
    pub(crate) fn prefix_metrics(&self) -> Option<PrefixMetrics> {
        self.prefix.as_ref().and_then(|c| c.metrics().cloned())
    }

    /// The session's metrics registry: scheduler instruments are already
    /// registered; a serving front-end (and the engine, through
    /// [`EngineTelemetry`](crate::telemetry::EngineTelemetry)) add
    /// theirs so one snapshot covers the whole stack.
    pub fn metrics_registry(&self) -> &MetricsRegistry {
        &self.telemetry
    }

    /// The KV occupancy gauges (rows, bytes, in-step peak bytes), shared
    /// with the serving front-end so `ServerHandle` accessors read them
    /// without a snapshot.
    pub(crate) fn kv_gauges(&self) -> (Arc<Gauge>, Arc<Gauge>, Arc<Gauge>) {
        (
            self.metrics.kv_rows.clone(),
            self.metrics.kv_bytes.clone(),
            self.metrics.kv_peak_bytes.clone(),
        )
    }

    /// The session's KV storage mode.
    pub fn kv_mode(&self) -> KvMode {
        self.kv_mode
    }

    /// The scheduling knobs in effect.
    pub fn scheduler_config(&self) -> SchedulerConfig {
        self.scheduler.config()
    }

    /// The engine (for cache statistics etc.).
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// The packed model being served.
    pub fn model(&self) -> &PackedTinyFm {
        &self.model
    }

    /// Scheduler counters so far.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Requests admitted and not yet finished (waiting or in flight).
    pub fn pending(&self) -> usize {
        self.scheduler.pending()
    }

    /// Whether request `id` is still live: waiting in the scheduler
    /// queue, or finished-but-undrained (zero-budget submissions before
    /// the next [`Session::step`]).
    pub fn is_live(&self, id: RequestId) -> bool {
        self.scheduler.iter().any(|r| r.id == id)
            || self.finished.iter().any(|r| r.id == id)
            || self
                .pending_forks
                .values()
                .any(|fs| fs.iter().any(|&(f, _)| f == id))
    }

    /// Enqueues a request, returning its id — the *leader* id when
    /// [`GenRequest::n_samples`] `> 1`, with samples `i = 1..n` assigned
    /// the consecutive ids `leader + i`. Requests with a zero token
    /// budget finish immediately (every sample returns the bare prompt).
    /// With a prefix cache enabled, admission matches the longest cached
    /// prompt prefix and the request prefills only the suffix.
    ///
    /// # Panics
    ///
    /// Panics if the prompt is empty or contains out-of-vocabulary tokens.
    pub fn submit(&mut self, req: GenRequest) -> RequestId {
        assert!(!req.prompt.is_empty(), "prompt must be non-empty");
        let vocab = self.model.config().vocab;
        assert!(
            req.prompt.iter().all(|&t| t < vocab),
            "prompt token out of vocabulary"
        );
        let n_samples = req.n_samples.max(1);
        let id = self.next_id;
        self.next_id += n_samples;
        if req.max_new_tokens == 0 {
            for i in 0..n_samples {
                self.finished.push(GenResult {
                    id: id + i,
                    tokens: req.prompt.clone(),
                    new_tokens: 0,
                });
            }
            return id;
        }
        let attach = self.prefix.as_mut().and_then(|c| c.lookup(&req.prompt));
        if let Some(m) = &attach {
            self.stats.prefix_hits += 1;
            self.stats.prefix_tokens_reused += m.tokens;
        }
        if n_samples > 1 {
            self.pending_forks.insert(
                id,
                (1..n_samples)
                    .map(|i| (id + i, req.seed.wrapping_add(i as u64)))
                    .collect(),
            );
        }
        self.scheduler.push(InFlight {
            id,
            prompt_len: req.prompt.len(),
            tokens: req.prompt,
            remaining: req.max_new_tokens,
            temperature: req.temperature,
            class: req.class,
            rng: SeededRng::new(req.seed),
            state: None,
            attach,
            recomputing: false,
        });
        self.metrics
            .queue_depth
            .set(self.scheduler.pending() as i64);
        id
    }

    /// Removes a live request before it finishes, releasing its batch
    /// slot and KV cache immediately. Returns `false` if `id` is not
    /// live (unknown, already finished, or already cancelled). A
    /// zero-budget request whose result is still waiting to drain
    /// through [`Session::step`] is also cancellable — its result is
    /// discarded.
    pub fn cancel(&mut self, id: RequestId) -> bool {
        // A fork sample whose leader has not completed its prompt yet:
        // drop it from the pending group (it never entered the queue).
        for followers in self.pending_forks.values_mut() {
            if let Some(pos) = followers.iter().position(|&(f, _)| f == id) {
                followers.remove(pos);
                self.stats.cancelled += 1;
                self.metrics.cancelled.inc();
                return true;
            }
        }
        if let Some(req) = self.scheduler.remove(id) {
            // Cancelling a fork leader before its prompt completes takes
            // its undispersed samples with it — they cannot exist
            // without the leader's prefill.
            if let Some(followers) = self.pending_forks.remove(&id) {
                self.stats.cancelled += followers.len();
                self.metrics.cancelled.add(followers.len() as u64);
            }
            // Dropping the InFlight drops its DecodeState: the KV cache
            // is reclaimed now, not at some later step.
            drop(req);
            self.stats.cancelled += 1;
            self.metrics.cancelled.inc();
            self.record_occupancy();
            return true;
        }
        if let Some(pos) = self.finished.iter().position(|r| r.id == id) {
            self.finished.remove(pos);
            self.stats.cancelled += 1;
            self.metrics.cancelled.inc();
            return true;
        }
        false
    }

    /// Refreshes the queue-depth and KV gauges from current state.
    fn record_occupancy(&self) {
        self.metrics
            .queue_depth
            .set(self.scheduler.pending() as i64);
        self.metrics.kv_rows.set(self.kv_occupancy() as i64);
        self.metrics.kv_bytes.set(self.kv_occupancy_bytes() as i64);
    }

    /// Total K/V rows held by live requests across all layers — the KV
    /// occupancy a serving front-end budgets against. Finished and
    /// cancelled requests release their rows eagerly (within the same
    /// [`Session::step`] call that retires them), so an idle session
    /// always reports 0.
    pub fn kv_occupancy(&self) -> usize {
        self.scheduler
            .iter()
            .map(|r| r.state.as_ref().map_or(0, |s| s.kv_rows()))
            .sum()
    }

    /// KV storage bytes held by live requests (see
    /// [`microscopiq_fm::DecodeState::kv_bytes`]).
    pub fn kv_occupancy_bytes(&self) -> usize {
        self.scheduler
            .iter()
            .map(|r| r.state.as_ref().map_or(0, |s| s.kv_bytes()))
            .sum()
    }

    /// Upper bound on the KV bytes one new token adds across all layers:
    /// the exact-mode figure (fp64 K + V rows per layer), which also
    /// bounds every quantized mode (quantized storage per token is
    /// strictly smaller than two fp64 rows). Used to project a step's
    /// worst-case growth against [`Session::kv_byte_budget`].
    fn kv_bytes_per_token_bound(&self) -> usize {
        let cfg = self.model.config();
        cfg.n_layers * 2 * cfg.d_model * 8
    }

    /// Preempts a live request: releases its [`DecodeState`] (KV rows
    /// and bytes reclaimed immediately) while keeping its sampled
    /// tokens, its RNG — already fast-forwarded by every draw it has
    /// made — and its queue position. The request later re-advances its
    /// full history (prompt + generated tokens) as chunked recompute
    /// segments, attaching the longest cached prefix when a prefix cache
    /// is enabled, and resumes sampling bitwise exactly where it left
    /// off: logits are only drawn once the cache has caught back up, so
    /// the RNG stream is untouched by the recompute (the same argument
    /// that makes chunked prefill bitwise-invisible).
    ///
    /// Returns `false` (and does nothing) if `id` is not live or holds
    /// no KV yet — preempting a request that never prefilled is a no-op.
    pub fn preempt(&mut self, id: RequestId) -> bool {
        let cached = self.prefix.is_some();
        let Some(req) = self.scheduler.iter_mut().find(|r| r.id == id) else {
            return false;
        };
        let holds_kv = req.state.as_ref().is_some_and(|s| s.kv_bytes() > 0);
        if !holds_kv {
            return false;
        }
        req.state = None;
        req.recomputing = true;
        let class = req.class;
        // Re-match the prefix cache over the full history so the
        // recompute reuses whatever is cached (at minimum the request's
        // own prompt, if it completed prompt prefill and was inserted).
        if cached {
            let tokens = std::mem::take(&mut req.tokens);
            let attach = self.prefix.as_mut().and_then(|c| c.lookup(&tokens));
            let req = self
                .scheduler
                .iter_mut()
                .find(|r| r.id == id)
                .expect("request found above");
            req.tokens = tokens;
            req.attach = attach;
        }
        self.stats.preemptions[class.index()] += 1;
        self.metrics.preemptions[class.index()].inc();
        self.record_occupancy();
        true
    }

    /// The preemption half of [`Session::kv_byte_budget`] enforcement,
    /// run ahead of planning: while current occupancy plus the
    /// *interactive* requests' next-step growth (their largest
    /// `max_batch` chunk gaps, token-budget-capped, times the per-token
    /// byte bound) projects past the budget, preempt a sheddable victim
    /// — best-effort before batch, newest (highest id) first,
    /// interactive never. Only interactive growth triggers preemption:
    /// sheddable growth is held back for free by [`Session::gate_planned`],
    /// so reclaiming KV for it would waste recompute work. The victim
    /// key `(class, id)` is a fixed total order over live requests, so
    /// repeated enforcement keeps sacrificing the same newest requests
    /// while older ones run to completion — two sheddable requests can
    /// never ping-pong preempting each other. Deterministic: depends
    /// only on queue state.
    fn enforce_kv_budget(&mut self) {
        let Some(budget) = self.kv_byte_budget else {
            return;
        };
        let per_token = self.kv_bytes_per_token_bound();
        let cfg = self.scheduler.config();
        loop {
            let occupancy = self.kv_occupancy_bytes();
            let mut gaps: Vec<usize> = self
                .scheduler
                .iter()
                .filter(|r| r.class == QosClass::Interactive)
                .map(|r| r.step_tokens(cfg.prefill_chunk))
                .collect();
            gaps.sort_unstable_by(|a, b| b.cmp(a));
            let growth: usize = gaps
                .iter()
                .take(cfg.max_batch)
                .sum::<usize>()
                .min(cfg.token_budget);
            if occupancy.saturating_add(growth.saturating_mul(per_token)) <= budget {
                return;
            }
            let victim = self
                .scheduler
                .iter()
                .filter(|r| r.class != QosClass::Interactive)
                .filter(|r| r.state.as_ref().is_some_and(|s| s.kv_bytes() > 0))
                .max_by_key(|r| (r.class.index(), r.id))
                .map(|r| r.id);
            let Some(id) = victim else {
                // Nothing left to reclaim: the remaining demand is
                // interactive (or stateless). Serve it anyway — the
                // budget sheds sheddable memory; capping interactive
                // admission is `max_in_flight`'s job.
                return;
            };
            self.preempt(id);
        }
    }

    /// The planning half of [`Session::kv_byte_budget`] enforcement:
    /// clips or defers *sheddable* planned work whose worst-case KV
    /// growth would project past the budget. Walks the plan in its QoS
    /// priority order, accumulating projected bytes (the live KV of
    /// every request — planned entries included — plus each approved
    /// take times the per-token bound). Interactive entries always pass
    /// (irreducible demand, see [`Session::enforce_kv_budget`]); a
    /// sheddable entry is clipped to the tokens that still fit
    /// (chunk splits are bitwise-invisible) and returned to the front
    /// of its class queue when none do. Deferral is free — unlike
    /// preemption the request keeps its KV and simply waits for
    /// occupancy to retire — so budget backpressure never wastes
    /// recompute work. Liveness guard: when nothing else was kept, the
    /// first plannable request proceeds with its full chunk even past
    /// the budget — a lone request whose own working set exceeds the
    /// budget must run (stalling it forever serves nobody), so the
    /// budget is strict except for that irreducible single-request
    /// overshoot.
    fn gate_planned(&mut self, planned: Vec<(InFlight, usize)>) -> Vec<(InFlight, usize)> {
        let Some(budget) = self.kv_byte_budget else {
            return planned;
        };
        let per_token = self.kv_bytes_per_token_bound();
        let mut projected: usize = self.kv_occupancy_bytes()
            + planned
                .iter()
                .map(|(r, _)| r.state.as_ref().map_or(0, |s| s.kv_bytes()))
                .sum::<usize>();
        let mut kept = Vec::with_capacity(planned.len());
        let mut deferred: Vec<InFlight> = Vec::new();
        for (req, take) in planned {
            let headroom = budget.saturating_sub(projected) / per_token;
            let clipped = if req.class == QosClass::Interactive {
                take
            } else {
                take.min(headroom)
            };
            if clipped == 0 {
                if kept.is_empty() && deferred.is_empty() {
                    projected = projected.saturating_add(take.saturating_mul(per_token));
                    kept.push((req, take));
                } else {
                    deferred.push(req);
                }
            } else {
                projected = projected.saturating_add(clipped.saturating_mul(per_token));
                kept.push((req, clipped));
            }
        }
        // Reverse order restores arrival order within each class queue.
        for req in deferred.into_iter().rev() {
            self.scheduler.requeue_front(req);
        }
        kept
    }

    /// Runs one batched decode step over live requests (bounded by the
    /// batch cap and token budget): one segment-packed forward — prefill
    /// chunks for requests whose prompt is incomplete, single-token
    /// segments for the rest — then one sampled token per request whose
    /// prefill completed. Returns the requests that **finished** on this
    /// step (plus any zero-budget submissions that completed instantly
    /// since the last step), sorted by id — empty when nothing finished
    /// or the session is idle.
    pub fn step(&mut self) -> Vec<GenResult> {
        self.step_report().finished
    }

    /// Like [`Session::step`], but also reports the token sampled for
    /// every request that completed a position on this step — the hook a
    /// streaming server uses to push tokens to clients as they are
    /// generated. Requests parked mid-prefill emit nothing until the
    /// step that finishes their prompt.
    pub fn step_report(&mut self) -> StepReport {
        // Instantly-finished (zero-budget) requests drain through the
        // next step so streaming callers see every completion.
        let mut done = std::mem::take(&mut self.finished);
        let mut emitted = Vec::new();
        let mut step_batch = None;
        // Memory pressure is resolved around planning: preemption first
        // reclaims sheddable KV that interactive growth needs, then the
        // gate clips/defers sheddable planned work so the step's actual
        // growth fits the budget (or is irreducible demand).
        self.enforce_kv_budget();
        let planned = self.scheduler.take_planned();
        let mut batch = self.gate_planned(planned);
        if !batch.is_empty() {
            let mut sb = StepBatch {
                requests: batch.len(),
                ..StepBatch::default()
            };
            for (req, take) in batch.iter_mut() {
                sb.class_requests[req.class.index()] += 1;
                if req.state.is_none() {
                    req.state = Some(match req.attach.take() {
                        // Admission matched a cached prefix: attach its
                        // segments copy-on-write and prefill the suffix.
                        Some(m) => DecodeState::with_prefix(
                            self.model.config(),
                            self.kv_mode,
                            &req.tokens[..m.tokens],
                            &m.bundles,
                        )
                        .expect("kv mode validated at construction"),
                        None => DecodeState::new(self.model.config(), self.kv_mode)
                            .expect("kv mode validated at construction"),
                    });
                }
                if req.recomputing {
                    // A preempted request re-advancing history: counted
                    // apart from first-time prefill so `prefill_tokens`
                    // keeps meaning "each prompt token at most once".
                    self.stats.recompute_tokens += *take;
                    sb.recompute_chunks += 1;
                    sb.recompute_tokens += *take;
                    sb.prefilled.push((req.id, *take));
                } else if !req.prefill_done() {
                    // Prompt tokens are counted on the step whose chunk
                    // advances them — never re-counted on resume.
                    self.stats.prefill_tokens += *take;
                    self.stats.prefill_chunks += 1;
                    sb.prefill_chunks += 1;
                    sb.prefill_tokens += *take;
                    sb.prefilled.push((req.id, *take));
                } else {
                    sb.decode_segments += 1;
                }
            }
            sb.new_tokens = sb.prefill_tokens + sb.recompute_tokens + sb.decode_segments;
            step_batch = Some(sb);
            let mut jobs: Vec<DecodeJob<'_>> = batch
                .iter_mut()
                .map(|(req, take)| {
                    let InFlight { state, tokens, .. } = req;
                    let state = state.as_mut().expect("state created above");
                    // New tokens = the next slice the cache hasn't seen:
                    // up to a chunk of prompt while prefilling, exactly
                    // the one sampled token after.
                    let tokens = &state.remaining_prompt(tokens)[..*take];
                    DecodeJob { state, tokens }
                })
                .collect();
            let logits = self.model.advance_batch(&mut jobs, &self.engine);
            drop(jobs);
            self.stats.steps += 1;
            self.stats.max_batch_used = self.stats.max_batch_used.max(batch.len());
            // True in-step peak: caches only grow during the forward and
            // finished requests release only at retirement below, so the
            // high-water mark is right here. (Planned requests were
            // popped from the queues, so sum both views.)
            let peak = self.kv_occupancy_bytes()
                + batch
                    .iter()
                    .map(|(r, _)| r.state.as_ref().map_or(0, |s| s.kv_bytes()))
                    .sum::<usize>();
            self.stats.peak_kv_bytes = self.stats.peak_kv_bytes.max(peak);
            self.metrics.kv_peak_bytes.set_max(peak as i64);
            let mut generated = 0;
            for ((req, _), logit) in batch.iter_mut().zip(logits.iter()) {
                // Sample only when every known token is in the cache —
                // i.e. the prompt just completed (final prefill chunk)
                // or this was a decode step. A request parked mid-prompt
                // draws nothing, so its RNG stream is untouched and
                // chunked outputs stay bitwise equal to whole-prompt —
                // and a preempted request recomputing history draws
                // nothing until the cache catches back up, so resumed
                // streams stay bitwise equal to unpreempted ones.
                let state = req.state.as_ref().expect("state created above");
                if state.len() < req.tokens.len() {
                    continue;
                }
                // The cache caught up: recompute (if any) is complete
                // and this request is back in steady-state decode.
                req.recomputing = false;
                // True exactly once per request: the step whose chunk
                // completed the prompt (no continuation pushed yet).
                let prompt_complete = req.tokens.len() == req.prompt_len;
                if prompt_complete {
                    if let Some(cache) = self.prefix.as_mut() {
                        cache.insert(
                            req.state.as_ref().expect("state created above"),
                            req.prompt_len,
                        );
                    }
                }
                let last = logit.col(logit.cols() - 1);
                let tok = sample_logits(&last, req.temperature, &mut req.rng);
                emitted.push((req.id, tok));
                generated += 1;
                if prompt_complete {
                    if let Some(followers) = self.pending_forks.remove(&req.id) {
                        // Disperse the fork group: freeze the leader's
                        // prompt rows into shared segments, then give
                        // each sample a copy-on-write clone plus its
                        // first token, drawn from the same final-chunk
                        // logits with its own seed — bitwise the draw a
                        // solo request with that seed would make.
                        let state = req.state.as_mut().expect("state created above");
                        let seal = match self.kv_mode {
                            KvMode::Exact => state.len(),
                            // Rows inside the residual window are still
                            // mutable; only the frozen prefix is shared,
                            // the remainder is deep-copied per fork.
                            KvMode::Quantized(_) => state.shareable_len(),
                        };
                        if seal > 0 {
                            state.share_prefix(seal);
                        }
                        for (fid, seed) in followers {
                            let mut rng = SeededRng::new(seed);
                            let fork_tok = sample_logits(&last, req.temperature, &mut rng);
                            emitted.push((fid, fork_tok));
                            generated += 1;
                            let mut tokens = req.tokens.clone();
                            tokens.push(fork_tok);
                            if req.remaining == 1 {
                                done.push(GenResult {
                                    id: fid,
                                    new_tokens: 1,
                                    tokens,
                                });
                            } else {
                                self.scheduler.push(InFlight {
                                    id: fid,
                                    prompt_len: req.prompt_len,
                                    tokens,
                                    remaining: req.remaining - 1,
                                    temperature: req.temperature,
                                    class: req.class,
                                    rng,
                                    state: Some(
                                        req.state.as_ref().expect("state created above").clone(),
                                    ),
                                    attach: None,
                                    recomputing: false,
                                });
                            }
                        }
                    }
                }
                req.tokens.push(tok);
                req.remaining -= 1;
            }
            self.stats.tokens_generated += generated;
            // Retire finished requests; the rest return to their class
            // queue's front in order, keeping arrival-order fairness
            // within the class (a request parked mid-prefill keeps its
            // place in line).
            for (req, _) in batch.into_iter().rev() {
                if req.remaining == 0 {
                    let InFlight {
                        id,
                        tokens,
                        prompt_len,
                        state,
                        ..
                    } = req;
                    // Release the KV cache *before* reporting: finished
                    // requests must never count against occupancy once
                    // their result is visible to the caller.
                    drop(state);
                    done.push(GenResult {
                        id,
                        new_tokens: tokens.len() - prompt_len,
                        tokens,
                    });
                } else {
                    self.scheduler.requeue_front(req);
                }
            }
            let sb = step_batch.as_mut().expect("set when batch non-empty");
            sb.queue_depth = self.scheduler.pending();
            sb.kv_rows = self.kv_occupancy();
            sb.kv_bytes = self.kv_occupancy_bytes();
            self.metrics.steps.inc();
            self.metrics.prefill_chunks.add(sb.prefill_chunks as u64);
            self.metrics.prefill_tokens.add(sb.prefill_tokens as u64);
            self.metrics
                .recompute_tokens
                .add(sb.recompute_tokens as u64);
            self.metrics.tokens_generated.add(generated as u64);
            self.metrics.batch_requests.record(sb.requests as u64);
            self.metrics.step_new_tokens.record(sb.new_tokens as u64);
            self.metrics.queue_depth.set(sb.queue_depth as i64);
            self.metrics.kv_rows.set(sb.kv_rows as i64);
            self.metrics.kv_bytes.set(sb.kv_bytes as i64);
        }
        done.sort_by_key(|r| r.id);
        StepReport {
            emitted,
            finished: done,
            batch: step_batch,
        }
    }

    /// Drives decode steps until every submitted request has finished,
    /// returning all results sorted by request id. Built on
    /// [`Session::step`] — callers that want completions as they happen
    /// can drive `step` themselves.
    pub fn run_to_completion(&mut self) -> Vec<GenResult> {
        let mut out = Vec::new();
        loop {
            out.extend(self.step());
            if self.scheduler.pending() == 0 && self.finished.is_empty() {
                break;
            }
        }
        out.sort_by_key(|r| r.id);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microscopiq_core::{MicroScopiQ, QuantConfig};
    use microscopiq_fm::{DequantGemm, TinyFm, TinyFmConfig};

    fn packed_model(seed: u64) -> (TinyFm, PackedTinyFm) {
        let cfg = TinyFmConfig {
            d_model: 32,
            n_heads: 2,
            d_ff: 64,
            n_layers: 2,
            vocab: 64,
        };
        let fm = TinyFm::teacher(cfg, seed);
        let mut rng = SeededRng::new(11);
        let calib: Vec<Vec<usize>> = (0..3).map(|_| fm.generate(8, 0.8, &mut rng)).collect();
        let q = MicroScopiQ::new(
            QuantConfig::w4()
                .macro_block(32)
                .row_block(32)
                .build()
                .unwrap(),
        );
        let packed = PackedTinyFm::quantize_from(&fm, &q, &calib).unwrap();
        (fm, packed)
    }

    /// Reference: generate one request alone through the same engine type,
    /// re-running the full prefix every step (the pre-incremental path).
    fn solo_generate(model: &PackedTinyFm, req: &GenRequest) -> Vec<usize> {
        let mut tokens = req.prompt.clone();
        let mut rng = SeededRng::new(req.seed);
        for _ in 0..req.max_new_tokens {
            let logits = model.forward(&tokens, &DequantGemm);
            let t = tokens.len() - 1;
            tokens.push(microscopiq_fm::sample_token(
                &logits,
                t,
                req.temperature,
                &mut rng,
            ));
        }
        tokens
    }

    #[test]
    fn batched_serving_matches_solo_generation() {
        let (_, packed) = packed_model(31);
        let reqs: Vec<GenRequest> = (0..5)
            .map(|i| GenRequest {
                prompt: vec![1 + i, 2 + i, 3],
                max_new_tokens: 4 + i,
                temperature: 0.8,
                seed: 100 + i as u64,
                ..Default::default()
            })
            .collect();
        let expected: Vec<Vec<usize>> = reqs.iter().map(|r| solo_generate(&packed, r)).collect();

        let mut session = Session::new(packed, DequantGemm, 3);
        for r in &reqs {
            session.submit(r.clone());
        }
        let results = session.run_to_completion();
        assert_eq!(results.len(), reqs.len());
        for (res, expect) in results.iter().zip(expected.iter()) {
            assert_eq!(&res.tokens, expect, "request {} diverged in batch", res.id);
        }
        let stats = session.stats();
        assert!(stats.max_batch_used > 1, "scheduler must actually batch");
        assert_eq!(
            stats.tokens_generated,
            reqs.iter().map(|r| r.max_new_tokens).sum::<usize>()
        );
    }

    #[test]
    fn continuous_batching_backfills_queue_slots() {
        let (_, packed) = packed_model(32);
        let mut session = Session::new(packed, DequantGemm, 2);
        // Three requests, batch cap 2: the third rides once a slot frees.
        for i in 0..3 {
            session.submit(GenRequest {
                prompt: vec![i + 1],
                max_new_tokens: 2,
                temperature: 0.7,
                seed: i as u64,
                ..Default::default()
            });
        }
        let results = session.run_to_completion();
        assert_eq!(results.len(), 3);
        assert_eq!(session.stats().max_batch_used, 2);
        for r in results {
            assert_eq!(r.tokens.len(), 3, "prompt 1 + generated 2");
        }
    }

    #[test]
    fn zero_budget_requests_finish_immediately() {
        let (_, packed) = packed_model(33);
        let mut session = Session::new(packed, DequantGemm, 2);
        let id = session.submit(GenRequest {
            prompt: vec![5, 6],
            max_new_tokens: 0,
            temperature: 1.0,
            seed: 1,
            ..Default::default()
        });
        let results = session.run_to_completion();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].id, id);
        assert_eq!(results[0].tokens, vec![5, 6]);
        assert_eq!(session.stats().steps, 0);
    }

    #[test]
    fn step_streams_completions_as_they_finish() {
        let (_, packed) = packed_model(35);
        let mut session = Session::new(packed, DequantGemm, 4);
        // Budgets 1 and 3: the first request must surface from step() two
        // steps before the second.
        let ids: Vec<RequestId> = [1usize, 3]
            .iter()
            .map(|&budget| {
                session.submit(GenRequest {
                    prompt: vec![7, 8],
                    max_new_tokens: budget,
                    temperature: 0.8,
                    seed: budget as u64,
                    ..Default::default()
                })
            })
            .collect();
        let first = session.step();
        assert_eq!(first.len(), 1, "budget-1 request finishes on step 1");
        assert_eq!(first[0].id, ids[0]);
        assert_eq!(first[0].new_tokens, 1);
        assert!(session.step().is_empty(), "nothing finishes on step 2");
        let third = session.step();
        assert_eq!(third.len(), 1, "budget-3 request finishes on step 3");
        assert_eq!(third[0].id, ids[1]);
        assert!(session.step().is_empty(), "idle session streams nothing");
        assert_eq!(session.stats().steps, 3);
    }

    #[test]
    fn zero_budget_completions_drain_through_step() {
        let (_, packed) = packed_model(36);
        let mut session = Session::new(packed, DequantGemm, 2);
        let id = session.submit(GenRequest {
            prompt: vec![3],
            max_new_tokens: 0,
            temperature: 1.0,
            seed: 9,
            ..Default::default()
        });
        let done = session.step();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, id);
        assert_eq!(session.stats().steps, 0, "no forward ran");
    }

    #[test]
    fn incremental_decode_prefills_once_per_request() {
        let (_, packed) = packed_model(37);
        let mut session = Session::new(packed, DequantGemm, 2);
        for i in 0..2 {
            session.submit(GenRequest {
                prompt: vec![1, 2, 3, 4],
                max_new_tokens: 5,
                temperature: 0.8,
                seed: i,
                ..Default::default()
            });
        }
        session.run_to_completion();
        let stats = session.stats();
        assert_eq!(
            stats.prefill_tokens, 8,
            "each prompt prefilled exactly once"
        );
        assert_eq!(stats.tokens_generated, 10);
        // 5 steps: one prefill+sample step, then 4 single-token steps.
        assert_eq!(stats.steps, 5);
    }

    #[test]
    fn quantized_kv_session_serves_and_differs_only_in_cache_precision() {
        use microscopiq_fm::{KvCacheConfig, KvMode};

        let (_, packed) = packed_model(38);
        // A tiny residual window so quantization actually engages.
        let mode = KvMode::Quantized(KvCacheConfig {
            bits: 4,
            group: 8,
            residual: 8,
        });
        let mut session = Session::with_kv_mode(packed, DequantGemm, 2, mode).unwrap();
        let id = session.submit(GenRequest {
            prompt: vec![1, 2, 3],
            max_new_tokens: 24,
            temperature: 0.8,
            seed: 5,
            ..Default::default()
        });
        let results = session.run_to_completion();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].id, id);
        assert_eq!(results[0].new_tokens, 24);
        let vocab = session.model().config().vocab;
        assert!(results[0].tokens.iter().all(|&t| t < vocab));
    }

    #[test]
    fn invalid_kv_mode_rejected_at_construction() {
        use microscopiq_fm::{KvCacheConfig, KvMode};

        let (_, packed) = packed_model(39);
        let bad = KvMode::Quantized(KvCacheConfig {
            bits: 2,
            group: 0,
            residual: 8,
        });
        assert!(Session::with_kv_mode(packed, DequantGemm, 2, bad).is_err());
    }

    #[test]
    fn step_report_emits_every_sampled_token() {
        let (_, packed) = packed_model(40);
        let mut session = Session::new(packed, DequantGemm, 4);
        let ids: Vec<RequestId> = (0..3)
            .map(|i| {
                session.submit(GenRequest {
                    prompt: vec![1 + i, 2],
                    max_new_tokens: 3,
                    temperature: 0.8,
                    seed: 70 + i as u64,
                    ..Default::default()
                })
            })
            .collect();
        let mut streamed: std::collections::HashMap<RequestId, Vec<usize>> =
            ids.iter().map(|&id| (id, Vec::new())).collect();
        let mut results = Vec::new();
        loop {
            let report = session.step_report();
            for (id, tok) in report.emitted {
                streamed.get_mut(&id).unwrap().push(tok);
            }
            results.extend(report.finished);
            if results.len() == ids.len() {
                break;
            }
        }
        for res in results {
            assert_eq!(
                streamed[&res.id],
                res.tokens[res.tokens.len() - res.new_tokens..],
                "per-step emission must reconstruct the generated suffix"
            );
        }
    }

    #[test]
    fn cancel_frees_slot_and_kv_cache() {
        let (_, packed) = packed_model(41);
        let layers = packed.config().n_layers;
        let mut session = Session::new(packed, DequantGemm, 2);
        let keep = session.submit(GenRequest {
            prompt: vec![1, 2],
            max_new_tokens: 4,
            temperature: 0.8,
            seed: 1,
            ..Default::default()
        });
        let drop_id = session.submit(GenRequest {
            prompt: vec![3, 4, 5],
            max_new_tokens: 4,
            temperature: 0.8,
            seed: 2,
            ..Default::default()
        });
        session.step();
        // Both prompts prefilled; each step's sampled token reaches the
        // cache on the *next* step it rides.
        assert_eq!(session.kv_occupancy(), (2 + 3) * layers);
        assert!(session.kv_occupancy_bytes() > 0);
        assert!(session.cancel(drop_id), "live request cancels");
        assert!(!session.cancel(drop_id), "second cancel is a no-op");
        assert_eq!(
            session.kv_occupancy(),
            2 * layers,
            "cancelled request's KV rows reclaimed immediately"
        );
        let results = session.run_to_completion();
        assert_eq!(results.len(), 1, "only the kept request finishes");
        assert_eq!(results[0].id, keep);
        assert_eq!(session.stats().cancelled, 1);
        assert_eq!(session.kv_occupancy(), 0);
    }

    #[test]
    fn finished_requests_release_kv_rows_eagerly() {
        let (_, packed) = packed_model(42);
        let layers = packed.config().n_layers;
        let mut session = Session::new(packed, DequantGemm, 2);
        session.submit(GenRequest {
            prompt: vec![1, 2, 3],
            max_new_tokens: 2,
            temperature: 0.8,
            seed: 3,
            ..Default::default()
        });
        assert_eq!(session.kv_occupancy(), 0, "nothing prefilled yet");
        assert!(session.step().is_empty());
        assert_eq!(session.kv_occupancy(), 3 * layers);
        let done = session.step();
        assert_eq!(done.len(), 1);
        assert_eq!(
            session.kv_occupancy(),
            0,
            "KV rows must be released within the step that finishes the request"
        );
    }

    #[test]
    fn cancel_discards_pending_zero_budget_result() {
        let (_, packed) = packed_model(43);
        let mut session = Session::new(packed, DequantGemm, 2);
        let id = session.submit(GenRequest {
            prompt: vec![1],
            max_new_tokens: 0,
            temperature: 1.0,
            seed: 4,
            ..Default::default()
        });
        assert!(session.cancel(id));
        assert!(session.step().is_empty(), "cancelled result never drains");
    }

    #[test]
    fn chunked_prefill_is_bitwise_identical_for_every_chunk_size() {
        let (_, packed) = packed_model(44);
        let reqs: Vec<GenRequest> = (0..4)
            .map(|i| GenRequest {
                prompt: (0..5 + 7 * i).map(|t| (t * 3 + i) % 60).collect(),
                max_new_tokens: 3 + i,
                temperature: 0.8,
                seed: 500 + i as u64,
                ..Default::default()
            })
            .collect();
        let mut whole = Session::new(packed.clone(), DequantGemm, 3);
        for r in &reqs {
            whole.submit(r.clone());
        }
        let expected = whole.run_to_completion();

        for chunk in [1usize, 2, 3, 5, 8, 64] {
            for budget in [usize::MAX, 1, 4, 9] {
                let cfg = SchedulerConfig::new(3)
                    .prefill_chunk(chunk)
                    .token_budget(budget);
                let mut session =
                    Session::with_config(packed.clone(), DequantGemm, cfg, KvMode::Exact).unwrap();
                for r in &reqs {
                    session.submit(r.clone());
                }
                let got = session.run_to_completion();
                assert_eq!(
                    got, expected,
                    "chunk={chunk} budget={budget} must not change outputs"
                );
                assert_eq!(session.kv_occupancy(), 0);
            }
        }
    }

    #[test]
    fn chunked_prefill_counts_tokens_once_and_chunks_per_segment() {
        let (_, packed) = packed_model(45);
        let cfg = SchedulerConfig::new(2).prefill_chunk(3);
        let mut session = Session::with_config(packed, DequantGemm, cfg, KvMode::Exact).unwrap();
        session.submit(GenRequest {
            prompt: (0..10).map(|t| t % 50).collect(),
            max_new_tokens: 2,
            temperature: 0.8,
            seed: 7,
            ..Default::default()
        });
        // Chunks of 3/3/3/1, no token sampled until the prompt completes.
        for expect_prefilled in [3usize, 6, 9] {
            let report = session.step_report();
            assert!(report.emitted.is_empty(), "mid-prefill steps emit nothing");
            assert_eq!(session.stats().prefill_tokens, expect_prefilled);
        }
        let report = session.step_report();
        assert_eq!(
            report.emitted.len(),
            1,
            "final chunk samples the first token"
        );
        let stats = session.stats();
        assert_eq!(stats.prefill_tokens, 10, "each prompt token counted once");
        assert_eq!(stats.prefill_chunks, 4, "10 tokens at chunk 3 = 4 segments");
        session.run_to_completion();
        let stats = session.stats();
        assert_eq!(stats.prefill_tokens, 10, "resume never double-counts");
        assert_eq!(stats.prefill_chunks, 4);
        assert_eq!(stats.tokens_generated, 2);
        // 4 prefill steps (last one samples) + 1 decode step.
        assert_eq!(stats.steps, 5);
    }

    #[test]
    fn token_budget_caps_new_tokens_per_step() {
        let (_, packed) = packed_model(46);
        // Budget 2 with three live decode streams: only two ride per step.
        let cfg = SchedulerConfig::new(4).token_budget(2);
        let mut session = Session::with_config(packed, DequantGemm, cfg, KvMode::Exact).unwrap();
        for i in 0..3 {
            session.submit(GenRequest {
                prompt: vec![1 + i],
                max_new_tokens: 2,
                temperature: 0.8,
                seed: i as u64,
                ..Default::default()
            });
        }
        let results = session.run_to_completion();
        assert_eq!(results.len(), 3);
        assert_eq!(
            session.stats().max_batch_used,
            2,
            "budget 2 = 2 requests/step"
        );
    }

    #[test]
    fn cancel_mid_prefill_reclaims_partial_kv() {
        let (_, packed) = packed_model(47);
        let layers = packed.config().n_layers;
        let cfg = SchedulerConfig::new(2).prefill_chunk(4);
        let mut session = Session::with_config(packed, DequantGemm, cfg, KvMode::Exact).unwrap();
        let keep = session.submit(GenRequest {
            prompt: vec![1, 2],
            max_new_tokens: 2,
            temperature: 0.8,
            seed: 1,
            ..Default::default()
        });
        let victim = session.submit(GenRequest {
            prompt: (0..20).map(|t| t % 50).collect(),
            max_new_tokens: 4,
            temperature: 0.8,
            seed: 2,
            ..Default::default()
        });
        session.step();
        // keep: 2-token prompt fully prefilled; victim: one 4-token chunk.
        assert_eq!(session.kv_occupancy(), (2 + 4) * layers);
        assert!(session.cancel(victim), "mid-prefill request cancels");
        assert_eq!(
            session.kv_occupancy(),
            2 * layers,
            "partial prefill KV reclaimed immediately"
        );
        let results = session.run_to_completion();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].id, keep);
        assert_eq!(session.stats().cancelled, 1);
        assert_eq!(session.kv_occupancy(), 0);
        assert!(
            session.stats().prefill_tokens < 2 + 20,
            "the cancelled prompt must not have been fully prefilled"
        );
    }

    #[test]
    #[should_panic(expected = "prefill chunk must be positive")]
    fn zero_prefill_chunk_is_rejected() {
        let (_, packed) = packed_model(48);
        let cfg = SchedulerConfig::new(2).prefill_chunk(0);
        let _ = Session::with_config(packed, DequantGemm, cfg, KvMode::Exact);
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn oov_prompt_is_rejected() {
        let (_, packed) = packed_model(34);
        let mut session = Session::new(packed, DequantGemm, 2);
        session.submit(GenRequest {
            prompt: vec![1_000_000],
            max_new_tokens: 1,
            temperature: 1.0,
            seed: 0,
            ..Default::default()
        });
    }

    #[test]
    fn qos_class_never_changes_outputs() {
        // Class is a pure scheduling signal: a mixed-class fleet must
        // produce bitwise the same tokens as the same fleet all-default.
        let (_, packed) = packed_model(61);
        let mk = |classed: bool| {
            let mut session = Session::with_config(
                packed.clone(),
                DequantGemm,
                SchedulerConfig::new(3).token_budget(4),
                KvMode::Exact,
            )
            .unwrap();
            for i in 0..6usize {
                session.submit(GenRequest {
                    prompt: vec![1 + i, 2],
                    max_new_tokens: 3 + i % 3,
                    temperature: 0.8,
                    seed: 40 + i as u64,
                    class: if classed {
                        QosClass::ALL[i % 3]
                    } else {
                        QosClass::default()
                    },
                    ..Default::default()
                });
            }
            session.run_to_completion()
        };
        let classed = mk(true);
        let plain = mk(false);
        assert_eq!(classed.len(), plain.len());
        for (a, b) in classed.iter().zip(plain.iter()) {
            assert_eq!(a.tokens, b.tokens, "request {} diverged by class", a.id);
        }
    }

    #[test]
    fn qos_interactive_preempts_batch_backlog() {
        // One slot per step: a batch-class backlog must not delay an
        // interactive arrival once classes compete.
        let (_, packed) = packed_model(62);
        let mut session =
            Session::with_config(packed, DequantGemm, SchedulerConfig::new(1), KvMode::Exact)
                .unwrap();
        for i in 0..4usize {
            session.submit(GenRequest {
                prompt: vec![1 + i],
                max_new_tokens: 4,
                temperature: 0.8,
                seed: i as u64,
                class: QosClass::Batch,
                ..Default::default()
            });
        }
        let interactive = session.submit(GenRequest {
            prompt: vec![9],
            max_new_tokens: 2,
            temperature: 0.8,
            seed: 99,
            class: QosClass::Interactive,
            ..Default::default()
        });
        // The very next step must ride the interactive request even
        // though four batch requests arrived first.
        let report = session.step_report();
        let batch = report.batch.expect("a step ran");
        assert_eq!(batch.class_requests, [1, 0, 0]);
        assert!(report.emitted.iter().any(|&(id, _)| id == interactive));
    }

    #[test]
    fn qos_shares_split_token_budget_under_contention() {
        // 4 interactive + 4 batch decode streams, budget 6, default
        // shares 8:3 → pass 1 grants interactive 4 (all it has) and
        // batch 1; the spill grants batch 1 more.
        let (_, packed) = packed_model(63);
        let mut session = Session::with_config(
            packed,
            DequantGemm,
            SchedulerConfig::new(8).token_budget(6),
            KvMode::Exact,
        )
        .unwrap();
        for i in 0..4usize {
            session.submit(GenRequest {
                prompt: vec![1 + i],
                max_new_tokens: 8,
                temperature: 0.8,
                seed: i as u64,
                class: QosClass::Interactive,
                ..Default::default()
            });
            session.submit(GenRequest {
                prompt: vec![2 + i],
                max_new_tokens: 8,
                temperature: 0.8,
                seed: 10 + i as u64,
                class: QosClass::Batch,
                ..Default::default()
            });
        }
        // First step prefills; from the second step on, all 8 are
        // single-token decode streams competing for the budget of 6.
        session.step_report();
        let report = session.step_report();
        let batch = report.batch.expect("a step ran");
        assert_eq!(batch.new_tokens, 6, "token budget fully used");
        assert_eq!(
            batch.class_requests,
            [4, 2, 0],
            "weighted shares: interactive 4, batch 1 + 1 spilled"
        );
    }

    #[test]
    fn qos_best_effort_is_not_starved() {
        // An interactive flood competes with one best-effort request;
        // the guaranteed max(1, ..) share must keep it progressing.
        let (_, packed) = packed_model(64);
        let mut session = Session::with_config(
            packed,
            DequantGemm,
            SchedulerConfig::new(8).token_budget(4),
            KvMode::Exact,
        )
        .unwrap();
        for i in 0..8usize {
            session.submit(GenRequest {
                prompt: vec![1 + i],
                max_new_tokens: 16,
                temperature: 0.8,
                seed: i as u64,
                class: QosClass::Interactive,
                ..Default::default()
            });
        }
        let be = session.submit(GenRequest {
            prompt: vec![11],
            max_new_tokens: 3,
            temperature: 0.8,
            seed: 77,
            class: QosClass::BestEffort,
            ..Default::default()
        });
        let mut finished_at = None;
        for step in 0..64 {
            let done = session.step();
            if done.iter().any(|r| r.id == be) {
                finished_at = Some(step);
                break;
            }
        }
        // 1 prefill + 3 decode steps of guaranteed share, plus slack.
        let at = finished_at.expect("best-effort request finished");
        assert!(at <= 8, "best-effort starved: finished at step {at}");
    }

    #[test]
    fn single_class_plan_is_fcfs_regardless_of_class() {
        // With only one class present the weighted pass is skipped:
        // a batch-only queue plans exactly like an interactive-only one.
        let (_, packed) = packed_model(65);
        let run = |class: QosClass| {
            let mut session = Session::with_config(
                packed.clone(),
                DequantGemm,
                SchedulerConfig::new(2).token_budget(3),
                KvMode::Exact,
            )
            .unwrap();
            for i in 0..4usize {
                session.submit(GenRequest {
                    prompt: vec![1 + i, 2],
                    max_new_tokens: 3,
                    temperature: 0.8,
                    seed: i as u64,
                    class,
                    ..Default::default()
                });
            }
            let results = session.run_to_completion();
            (results, session.stats())
        };
        let (r_int, s_int) = run(QosClass::Interactive);
        let (r_be, s_be) = run(QosClass::BestEffort);
        assert_eq!(s_int, s_be, "identical step/batch accounting");
        for (a, b) in r_int.iter().zip(r_be.iter()) {
            assert_eq!(a.tokens, b.tokens);
        }
    }

    #[test]
    #[should_panic(expected = "QoS share weights must be positive")]
    fn zero_qos_weight_is_rejected() {
        let (_, packed) = packed_model(66);
        let cfg = SchedulerConfig::new(2).qos(QosShares {
            interactive: 8,
            batch: 0,
            best_effort: 1,
        });
        let _ = Session::with_config(packed, DequantGemm, cfg, KvMode::Exact);
    }

    #[test]
    fn preempt_mid_decode_resumes_bitwise() {
        let (_, packed) = packed_model(70);
        let req = GenRequest {
            prompt: vec![3, 1, 4, 1, 5, 9, 2, 6],
            max_new_tokens: 10,
            temperature: 0.8,
            seed: 41,
            class: QosClass::Batch,
            ..Default::default()
        };
        let expected = solo_generate(&packed, &req);

        let mut session = Session::with_config(
            packed,
            DequantGemm,
            SchedulerConfig::new(2).prefill_chunk(4),
            KvMode::Exact,
        )
        .unwrap();
        session.enable_prefix_cache(PrefixCacheConfig::default());
        let id = session.submit(req);
        // Past prefill and a few sampled tokens.
        for _ in 0..5 {
            session.step();
        }
        assert!(session.kv_occupancy() > 0, "request holds KV mid-decode");
        assert!(session.preempt(id), "live request with KV preempts");
        assert_eq!(session.kv_occupancy(), 0, "preemption releases the KV");
        let results = session.run_to_completion();
        assert_eq!(results.len(), 1);
        assert_eq!(
            results[0].tokens, expected,
            "preempted stream must resume bitwise"
        );
        let stats = session.stats();
        assert_eq!(stats.preemptions, [0, 1, 0]);
        assert!(
            stats.recompute_tokens > 0,
            "recompute segments were executed"
        );
        assert_eq!(
            session.kv_occupancy(),
            0,
            "KV drains after the stream finishes"
        );
    }

    #[test]
    fn preempt_is_noop_without_kv_or_for_unknown_id() {
        let (_, packed) = packed_model(71);
        let mut session = Session::new(packed, DequantGemm, 2);
        let id = session.submit(GenRequest {
            prompt: vec![1, 2],
            max_new_tokens: 2,
            temperature: 0.8,
            seed: 1,
            ..Default::default()
        });
        // Never stepped: no KV held yet.
        assert!(!session.preempt(id));
        assert!(!session.preempt(id + 99));
        assert_eq!(session.stats().preempted(), 0);
        let results = session.run_to_completion();
        assert_eq!(results.len(), 1, "no-op preempt leaves the request live");
    }

    #[test]
    fn kv_budget_preempts_sheddable_only_and_stays_bitwise() {
        let (_, packed) = packed_model(72);
        let mk = |i: usize, class: QosClass| GenRequest {
            prompt: vec![1 + i, 2, 3 + i, 4, 5 + i, 6, 7, 8 + i],
            max_new_tokens: 6,
            temperature: 0.8,
            seed: 200 + i as u64,
            class,
            ..Default::default()
        };
        let reqs: Vec<GenRequest> = vec![
            mk(0, QosClass::BestEffort),
            mk(1, QosClass::BestEffort),
            mk(2, QosClass::Interactive),
        ];
        let expected: Vec<Vec<usize>> = reqs.iter().map(|r| solo_generate(&packed, r)).collect();

        let mut session = Session::with_config(
            packed,
            DequantGemm,
            SchedulerConfig::new(2).prefill_chunk(4),
            KvMode::Exact,
        )
        .unwrap();
        session.enable_prefix_cache(PrefixCacheConfig::default());
        // d_model 32, 2 layers → 1 KiB per token (exact mode). ~14
        // tokens per finished request, two-deep batch: a 24 KiB ceiling
        // forces best-effort out when interactive pressure arrives, with
        // room for victims to recompute once pressure clears.
        let budget = 24 * 1024;
        session.set_kv_byte_budget(Some(budget));
        // Stagger: the best-effort pair acquires KV first (two chunk
        // steps → 16 KiB held), *then* the interactive request arrives —
        // its growth is what forces a sheddable victim out. (Submitted
        // all at once, the gate alone would defer best-effort from the
        // start and nothing would ever need preempting.)
        session.submit(reqs[0].clone());
        session.submit(reqs[1].clone());
        let mut results = Vec::new();
        for _ in 0..2 {
            results.extend(session.step());
        }
        assert!(session.kv_occupancy() > 0, "best-effort holds KV");
        session.submit(reqs[2].clone());
        for _ in 0..400 {
            results.extend(session.step());
            if results.len() == reqs.len() {
                break;
            }
        }
        assert_eq!(results.len(), reqs.len(), "budget squeeze must not stall");
        results.sort_by_key(|r| r.id);
        for (res, expect) in results.iter().zip(expected.iter()) {
            assert_eq!(
                &res.tokens, expect,
                "request {} diverged under preemption",
                res.id
            );
        }
        let stats = session.stats();
        assert!(stats.preempted() > 0, "the squeeze actually preempted");
        assert_eq!(stats.preemptions[0], 0, "interactive is never preempted");
        assert!(
            stats.peak_kv_bytes <= budget,
            "peak {} exceeded budget {budget}",
            stats.peak_kv_bytes
        );
        assert_eq!(session.kv_occupancy(), 0, "KV drains after churn");
    }
}
