//! The fused dequant-GEMM kernel: computes `W · X` directly from a
//! [`PackedLayer`], walking macro-blocks in layout order, decoding each
//! micro-block (Isf inlier scale, MXScale outlier exponent, Upper/Lower
//! half reassembly through the permutation list) into a small stack-local
//! buffer, and accumulating scaled activation rows into the output tile —
//! the dense weight matrix is never materialized.
//!
//! Accumulation order is chosen to be *bit-identical* to
//! `layer.dequantize().matmul(x)`: for every output element, contributions
//! arrive in ascending reduction index `k`, which is also the order the
//! dense blocked matmul uses. Skipped zero weights add exactly nothing, so
//! the fused path and the dense reference agree to the last ulp.

use microscopiq_core::config::GroupAxis;
use microscopiq_core::packed::{GroupSpan, PackedLayer};
use microscopiq_linalg::Matrix;

/// Accumulates one decoded macro-block span into the output.
///
/// * `w` — decoded weights for the span (`span.len` values);
/// * `acts` — activations, `d_col × n`;
/// * `out` — output buffer rows `[row_base, row_base + out_rows)` of the
///   full `d_row × n` result, stored row-major in `out`.
///
/// For [`GroupAxis::DotProduct`] the span lives on output row
/// `span.line`; for [`GroupAxis::OutputChannel`] it covers output rows
/// `span.offset..span.offset + span.len` at reduction index `span.line`.
/// Spans outside `[row_base, row_base + out_rows)` are the caller's bug.
pub(crate) fn accumulate_span(
    axis: GroupAxis,
    span: &GroupSpan,
    w: &[f64],
    acts: &Matrix,
    out: &mut [f64],
    row_base: usize,
    n: usize,
) {
    match axis {
        GroupAxis::DotProduct => {
            let r = span.line - row_base;
            let orow = &mut out[r * n..(r + 1) * n];
            for (i, &wv) in w.iter().enumerate() {
                if wv == 0.0 {
                    continue;
                }
                let arow = acts.row(span.offset + i);
                for (o, a) in orow.iter_mut().zip(arow.iter()) {
                    *o += wv * a;
                }
            }
        }
        GroupAxis::OutputChannel => {
            let arow = acts.row(span.line);
            for (i, &wv) in w.iter().enumerate() {
                if wv == 0.0 {
                    continue;
                }
                let r = span.offset + i - row_base;
                let orow = &mut out[r * n..(r + 1) * n];
                for (o, a) in orow.iter_mut().zip(arow.iter()) {
                    *o += wv * a;
                }
            }
        }
    }
}

/// Group indices contributing to output rows `[row_lo, row_hi)`, in an
/// order that keeps per-output-element accumulation ascending in `k`.
///
/// * `DotProduct`: rows are lines; every group of lines `row_lo..row_hi`
///   contributes. The walk is k-block-major (macro-block position outer,
///   line inner) so one activation block stays cache-hot across all
///   output rows — the same blocking the dense matmul uses. Per output
///   row the macro-block position still ascends, so per-element
///   accumulation order is unchanged.
/// * `OutputChannel`: rows are `offset` positions; the groups at
///   macro-block positions covering the row range contribute, walked with
///   the line (= reduction index) outermost.
pub(crate) fn groups_for_rows(layer: &PackedLayer, row_lo: usize, row_hi: usize) -> Vec<usize> {
    let per_line = layer.groups_per_line();
    match layer.axis() {
        GroupAxis::DotProduct => {
            let mut order = Vec::with_capacity((row_hi - row_lo) * per_line);
            for mab in 0..per_line {
                for line in row_lo..row_hi {
                    order.push(line * per_line + mab);
                }
            }
            order
        }
        GroupAxis::OutputChannel => {
            let mab_lo = row_lo / layer.macro_block();
            let mab_hi = row_hi.div_ceil(layer.macro_block());
            let mut order = Vec::with_capacity((mab_hi - mab_lo) * layer.lines());
            for line in 0..layer.lines() {
                for mab in mab_lo..mab_hi {
                    order.push(line * per_line + mab);
                }
            }
            order
        }
    }
}

/// Splits `n` output columns into fixed-width chunks (8, then 4/2/1 for
/// the remainder) so the bucketed kernels run on compile-time widths.
pub(crate) fn for_col_chunks(n: usize, mut f: impl FnMut(usize, usize)) {
    let mut c0 = 0;
    while n - c0 >= 8 {
        f(c0, 8);
        c0 += 8;
    }
    for w in [4, 2, 1] {
        while n - c0 >= w {
            f(c0, w);
            c0 += w;
        }
    }
}

/// Bucketed accumulation of one cached tile into columns
/// `[col0, col0 + N)` of the output rows `[row_base, ..)` buffer.
///
/// Inliers contribute per bucket as `code·2^Isf × Σ activation-rows` —
/// branch-free adds with one multiply per bucket per column — and
/// outliers as individual exact multiply-adds. Partial sums reassociate
/// relative to the dense reference, so results agree to ~1e-12, not
/// bitwise (the uncached kernel stays bitwise).
#[allow(clippy::too_many_arguments)] // internal kernel; args are the GEMM coordinates
pub(crate) fn accumulate_bucketed<const N: usize>(
    axis: GroupAxis,
    span: &GroupSpan,
    tile: &crate::cache::BucketTile,
    acts_flat: &[f64],
    n: usize,
    col0: usize,
    out: &mut [f64],
    row_base: usize,
) {
    let arow_at = |k: usize| -> &[f64; N] {
        acts_flat[k * n + col0..][..N]
            .try_into()
            .expect("chunk width")
    };
    match axis {
        GroupAxis::DotProduct => {
            let r = span.line - row_base;
            let orow: &mut [f64; N] = (&mut out[r * n + col0..][..N])
                .try_into()
                .expect("chunk width");
            for (m, slots) in tile.buckets() {
                // Short buckets (common at bb = 4, where 15 code values
                // split a 64-slot group thinly): direct multiply-adds beat
                // the accumulate-then-combine detour.
                if slots.len() < 4 {
                    for &i in slots {
                        let arow = arow_at(span.offset + i as usize);
                        for j in 0..N {
                            orow[j] += m * arow[j];
                        }
                    }
                    continue;
                }
                let mut acc = [0.0_f64; N];
                for &i in slots {
                    let arow = arow_at(span.offset + i as usize);
                    for j in 0..N {
                        acc[j] += arow[j];
                    }
                }
                for j in 0..N {
                    orow[j] += m * acc[j];
                }
            }
            for &(i, v) in tile.outliers() {
                let arow = arow_at(span.offset + i as usize);
                for j in 0..N {
                    orow[j] += v * arow[j];
                }
            }
        }
        GroupAxis::OutputChannel => {
            let arow = *arow_at(span.line);
            for (m, slots) in tile.buckets() {
                let mut ma = [0.0_f64; N];
                for j in 0..N {
                    ma[j] = m * arow[j];
                }
                for &i in slots {
                    let r = span.offset + i as usize - row_base;
                    let orow: &mut [f64; N] = (&mut out[r * n + col0..][..N])
                        .try_into()
                        .expect("chunk width");
                    for j in 0..N {
                        orow[j] += ma[j];
                    }
                }
            }
            for &(i, v) in tile.outliers() {
                let r = span.offset + i as usize - row_base;
                let orow: &mut [f64; N] = (&mut out[r * n + col0..][..N])
                    .try_into()
                    .expect("chunk width");
                for j in 0..N {
                    orow[j] += v * arow[j];
                }
            }
        }
    }
}

/// Accumulation of one flat `f32` tile at full output width (no column
/// chunking — the group is walked once). Values are exact `f32`
/// castbacks; wide-escaped slots contribute their exact `f64` values.
pub(crate) fn accumulate_flat(
    axis: GroupAxis,
    span: &GroupSpan,
    tile: &crate::cache::FlatTile,
    acts: &Matrix,
    out: &mut [f64],
    row_base: usize,
    n: usize,
) {
    match axis {
        GroupAxis::DotProduct => {
            let r = span.line - row_base;
            let orow = &mut out[r * n..(r + 1) * n];
            for (i, &wv) in tile.values().iter().enumerate() {
                if wv == 0.0 {
                    continue;
                }
                let wv = wv as f64;
                let arow = acts.row(span.offset + i);
                for (o, a) in orow.iter_mut().zip(arow.iter()) {
                    *o += wv * a;
                }
            }
            for &(i, v) in tile.wide() {
                let arow = acts.row(span.offset + i as usize);
                for (o, a) in orow.iter_mut().zip(arow.iter()) {
                    *o += v * a;
                }
            }
        }
        GroupAxis::OutputChannel => {
            let arow = acts.row(span.line);
            for (i, &wv) in tile.values().iter().enumerate() {
                if wv == 0.0 {
                    continue;
                }
                let wv = wv as f64;
                let r = span.offset + i - row_base;
                let orow = &mut out[r * n..(r + 1) * n];
                for (o, a) in orow.iter_mut().zip(arow.iter()) {
                    *o += wv * a;
                }
            }
            for &(i, v) in tile.wide() {
                let r = span.offset + i as usize - row_base;
                let orow = &mut out[r * n..(r + 1) * n];
                for (o, a) in orow.iter_mut().zip(arow.iter()) {
                    *o += v * a;
                }
            }
        }
    }
}

/// The scalar fused dequant-GEMM: `W · acts` computed straight from packed
/// blocks on a single thread, with no decoded-block caching.
///
/// # Panics
///
/// Panics if `acts.rows() != layer.d_col()`.
pub fn fused_gemm_serial(layer: &PackedLayer, acts: &Matrix) -> Matrix {
    assert_eq!(
        layer.d_col(),
        acts.rows(),
        "fused gemm dimension mismatch: {}x{} · {}x{}",
        layer.d_row(),
        layer.d_col(),
        acts.rows(),
        acts.cols()
    );
    let n = acts.cols();
    let mut out = Matrix::zeros(layer.d_row(), n);
    let mut buf = vec![0.0_f64; layer.macro_block()];
    for g in groups_for_rows(layer, 0, layer.d_row()) {
        let span = layer.group_span(g);
        layer.decode_group_into(g, &mut buf);
        accumulate_span(
            layer.axis(),
            &span,
            &buf[..span.len],
            acts,
            out.as_mut_slice(),
            0,
            n,
        );
    }
    out
}

/// The scalar fused dequant-GEMV: `W · x` for a single activation column,
/// computed straight from packed blocks with no tile bookkeeping. This is
/// the decode fast path (m = 1): per-step serving batches of one collapse
/// to a GEMV per linear layer, where tile-queue and thread-spawn overhead
/// would dominate the actual multiply-accumulates.
///
/// Bit-identical to [`fused_gemm_serial`] on a one-column activation
/// matrix (same per-element accumulation order).
///
/// # Panics
///
/// Panics if `x.len() != layer.d_col()`.
pub fn fused_gemv_serial(layer: &PackedLayer, x: &[f64]) -> Vec<f64> {
    assert_eq!(
        layer.d_col(),
        x.len(),
        "fused gemv dimension mismatch: {}x{} · {}",
        layer.d_row(),
        layer.d_col(),
        x.len()
    );
    let mut out = vec![0.0_f64; layer.d_row()];
    let mut buf = vec![0.0_f64; layer.macro_block()];
    for g in groups_for_rows(layer, 0, layer.d_row()) {
        let span = layer.group_span(g);
        layer.decode_group_into(g, &mut buf);
        match layer.axis() {
            GroupAxis::DotProduct => {
                let acc = &mut out[span.line];
                for (i, &wv) in buf[..span.len].iter().enumerate() {
                    if wv != 0.0 {
                        *acc += wv * x[span.offset + i];
                    }
                }
            }
            GroupAxis::OutputChannel => {
                let a = x[span.line];
                for (i, &wv) in buf[..span.len].iter().enumerate() {
                    if wv != 0.0 {
                        out[span.offset + i] += wv * a;
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use microscopiq_core::config::{GroupAxis, QuantConfig};
    use microscopiq_core::solver::solve;
    use microscopiq_core::traits::LayerTensors;
    use microscopiq_linalg::{Matrix, SeededRng};

    fn packed_layer(
        rows: usize,
        cols: usize,
        axis: GroupAxis,
        bits: u32,
        seed: u64,
    ) -> PackedLayer {
        let mut rng = SeededRng::new(seed);
        let mut w = Matrix::from_fn(rows, cols, |_, _| rng.normal(0.0, 0.02));
        for _ in 0..(rows * cols / 40) {
            let r = rng.below(rows);
            let c = rng.below(cols);
            w[(r, c)] = rng.sign() * rng.uniform_range(0.15, 0.5);
        }
        let x = Matrix::from_fn(cols, 8, |_, _| rng.normal(0.0, 1.0));
        let layer = LayerTensors::new(w, x).unwrap();
        let cfg = QuantConfig::builder(bits)
            .macro_block(16)
            .row_block(16)
            .group_axis(axis)
            .build()
            .unwrap();
        solve(&layer, &cfg).unwrap().packed.unwrap()
    }

    #[test]
    fn fused_matches_dense_bitwise_dot_product() {
        let layer = packed_layer(24, 48, GroupAxis::DotProduct, 2, 1);
        let mut rng = SeededRng::new(2);
        let acts = Matrix::from_fn(48, 7, |_, _| rng.normal(0.0, 1.0));
        let fused = fused_gemm_serial(&layer, &acts);
        let dense = layer.dequantize().matmul(&acts);
        assert_eq!(fused, dense, "fused path must be bit-identical");
    }

    #[test]
    fn fused_matches_dense_bitwise_output_channel() {
        let layer = packed_layer(32, 16, GroupAxis::OutputChannel, 4, 3);
        let mut rng = SeededRng::new(4);
        let acts = Matrix::from_fn(16, 5, |_, _| rng.normal(0.0, 1.0));
        let fused = fused_gemm_serial(&layer, &acts);
        let dense = layer.dequantize().matmul(&acts);
        assert_eq!(fused, dense, "fused path must be bit-identical");
    }

    #[test]
    fn group_order_covers_every_group_once() {
        for (axis, rows, cols) in [
            (GroupAxis::DotProduct, 24, 48),
            (GroupAxis::OutputChannel, 32, 16),
        ] {
            let layer = packed_layer(rows, cols, axis, 2, 7);
            let mut order = groups_for_rows(&layer, 0, layer.d_row());
            order.sort_unstable();
            let expect: Vec<usize> = (0..layer.num_groups()).collect();
            assert_eq!(order, expect, "{axis:?}");
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let layer = packed_layer(16, 32, GroupAxis::DotProduct, 2, 9);
        let acts = Matrix::zeros(16, 4);
        let _ = fused_gemm_serial(&layer, &acts);
    }

    #[test]
    fn gemv_matches_gemm_bitwise_both_axes() {
        for (axis, rows, cols) in [
            (GroupAxis::DotProduct, 24, 48),
            (GroupAxis::OutputChannel, 32, 16),
        ] {
            for bits in [2, 4] {
                let layer = packed_layer(rows, cols, axis, bits, 21);
                let mut rng = SeededRng::new(22);
                let x: Vec<f64> = (0..cols).map(|_| rng.normal(0.0, 1.0)).collect();
                let acts = Matrix::from_vec(cols, 1, x.clone());
                let gemv = fused_gemv_serial(&layer, &x);
                let gemm = fused_gemm_serial(&layer, &acts);
                assert_eq!(gemv, gemm.as_slice().to_vec(), "{axis:?} bits={bits}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "gemv dimension mismatch")]
    fn gemv_dimension_mismatch_panics() {
        let layer = packed_layer(16, 32, GroupAxis::DotProduct, 2, 9);
        let _ = fused_gemv_serial(&layer, &[0.0; 16]);
    }
}
