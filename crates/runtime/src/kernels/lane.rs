//! The lane-blocked `f32` SIMD kernel: the fast path the dispatch layer
//! selects for uncached GEMM/GEMV on supported shapes.
//!
//! Strategy (per macro-block group):
//!
//! 1. **Stack-resident code plane.** The group's unscaled inlier codes
//!    decode into a `[f32; MAX_GROUP]` on the stack through the borrowed
//!    [`GroupView::decode_codes_f32`] API — no per-block allocation, and
//!    integer codes are exact in `f32`.
//! 2. **Scale hoisting.** Inliers decode to `code × 2^Isf` with one scale
//!    per group, so the inner loop accumulates raw `code × activation`
//!    partial sums and multiplies by the scale once per group per lane
//!    block — the per-element scale multiply that dominates per-group
//!    quantized kernels (see "Finer is Better" / the IBM microscaling
//!    study) is amortized to `1/group_len`.
//! 3. **8-wide FMA lanes.** Activation columns process in compile-time
//!    chunks of 8 (then 4/2/1 for the remainder) with the running sums in
//!    a `[f32; N]` register block — a branchless, unrolled inner loop the
//!    compiler autovectorizes (zero codes multiply to zero instead of
//!    branching).
//! 4. **Exact outlier fixups.** Outlier slots are zeroed in the plane and
//!    their exact `f64` decoded values accumulate separately in full
//!    precision, so the large-magnitude outliers the paper's format
//!    protects never see `f32` rounding.
//!
//! Numerics: activations and inlier products round to `f32`
//! (outliers stay exact), so results match the scalar oracle within the
//! pinned [`Tolerance::Rel`] bound rather than bitwise. The conformance
//! suite asserts the pin across shapes × widths × outlier regimes.
//!
//! [`GroupView::decode_codes_f32`]: microscopiq_core::packed::GroupView::decode_codes_f32

use super::{for_col_chunks, groups_for_rows, DispatchKey, KernelCtx, MicroKernel, Tolerance};
use microscopiq_core::config::GroupAxis;
use microscopiq_core::packed::PackedLayer;
use microscopiq_linalg::Matrix;

/// Registry name of the lane-blocked `f32` kernel.
pub const LANE_KERNEL: &str = "lane-f32";

/// Largest group (macro-block) size the stack-resident code plane holds.
pub const MAX_GROUP: usize = 256;

/// Outlier micro-block fraction above which dispatch prefers the scalar
/// oracle: when most blocks carry outliers, the exact `f64` fixup loop
/// dominates and the `f32` lane work is overhead. (The kernel stays
/// *correct* beyond this density — `supports` is performance advice.)
pub(crate) const MAX_OUTLIER_FRAC: f64 = 0.5;

/// The lane-blocked `f32` kernel. Stateless; ignores the decoded cache.
#[derive(Debug, Clone, Copy, Default)]
pub struct LaneKernel;

/// One group's contribution to one output row: `orow32[c] += scale ×
/// Σ_k plane[k] · acts32[k][c]` over a compile-time block of `N` columns,
/// with the partial sums held in registers and the scale applied once at
/// the end.
#[inline]
fn row_lanes<const N: usize>(
    plane: &[f32],
    acts32: &[f32],
    k0: usize,
    n: usize,
    c0: usize,
    scale: f32,
    orow32: &mut [f32],
) {
    let mut acc = [0.0_f32; N];
    for (i, &c) in plane.iter().enumerate() {
        let a: &[f32; N] = acts32[(k0 + i) * n + c0..][..N]
            .try_into()
            .expect("chunk width");
        for j in 0..N {
            acc[j] += c * a[j];
        }
    }
    let o: &mut [f32; N] = (&mut orow32[c0..][..N]).try_into().expect("chunk width");
    for j in 0..N {
        o[j] += scale * acc[j];
    }
}

/// One group's contribution on the `OutputChannel` axis: every nonzero
/// code scatters `(scale × code) × activation-row` into its own output
/// row over a compile-time block of `N` columns.
#[inline]
fn col_lanes<const N: usize>(
    plane: &[f32],
    arow32: &[f32],
    n: usize,
    c0: usize,
    scale: f32,
    row0: usize,
    lane_acc: &mut [f32],
) {
    let a: &[f32; N] = arow32[c0..][..N].try_into().expect("chunk width");
    for (i, &c) in plane.iter().enumerate() {
        if c == 0.0 {
            continue; // skip the row write, not just the multiply
        }
        let m = scale * c;
        let o: &mut [f32; N] = (&mut lane_acc[(row0 + i) * n + c0..][..N])
            .try_into()
            .expect("chunk width");
        for j in 0..N {
            o[j] += m * a[j];
        }
    }
}

/// 8-lane blocked dot product with a scalar tail; partial lane sums
/// reduce pairwise at the end.
#[inline]
fn dot_lanes(w: &[f32], x: &[f32]) -> f32 {
    let mut acc = [0.0_f32; 8];
    let mut wc = w.chunks_exact(8);
    let mut xc = x.chunks_exact(8);
    for (cw, cx) in (&mut wc).zip(&mut xc) {
        let cw: &[f32; 8] = cw.try_into().expect("chunk of 8");
        let cx: &[f32; 8] = cx.try_into().expect("chunk of 8");
        for j in 0..8 {
            acc[j] += cw[j] * cx[j];
        }
    }
    let mut tail = 0.0_f32;
    for (a, b) in wc.remainder().iter().zip(xc.remainder().iter()) {
        tail += a * b;
    }
    ((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7])) + tail
}

impl MicroKernel for LaneKernel {
    fn name(&self) -> &'static str {
        LANE_KERNEL
    }

    fn tolerance(&self) -> Tolerance {
        // f32 accumulation over the reduction dimension; pinned with
        // headroom over the observed ~1e-5 worst case at k = 2048.
        Tolerance::Rel(1e-3)
    }

    fn supports(&self, key: &DispatchKey, _ctx: &KernelCtx<'_>) -> bool {
        key.group <= MAX_GROUP && key.outlier_frac <= MAX_OUTLIER_FRAC
    }

    fn wants_f32_acts(&self) -> bool {
        true // a tiled caller should convert the activations once per GEMM
    }

    fn gemm_rows(
        &self,
        ctx: &KernelCtx<'_>,
        layer: &PackedLayer,
        acts: &Matrix,
        row_lo: usize,
        row_hi: usize,
        out: &mut [f64],
    ) {
        assert!(
            layer.macro_block() <= MAX_GROUP,
            "lane kernel group plane holds at most {MAX_GROUP} slots"
        );
        let n = acts.cols();
        let rows = row_hi - row_lo;
        // The f32 image of the activations: shared through the context
        // when a tiled caller precomputed it, converted here otherwise
        // (then amortized over every group in the tile). One f32 lane
        // accumulator per tile; outliers accumulate separately, exactly,
        // straight into `out`.
        let local32: Vec<f32>;
        let acts32: &[f32] = match ctx.acts32 {
            Some(shared) => {
                debug_assert_eq!(shared.len(), acts.as_slice().len(), "acts32 shape");
                shared
            }
            None => {
                local32 = acts.as_slice().iter().map(|&v| v as f32).collect();
                &local32
            }
        };
        let mut lane_acc = vec![0.0_f32; rows * n];
        let mut plane = [0.0_f32; MAX_GROUP];
        let axis = layer.axis();
        for g in groups_for_rows(layer, row_lo, row_hi) {
            let view = layer.group(g);
            let span = view.span();
            let scale = view.isf().value() as f32;
            match axis {
                GroupAxis::DotProduct => {
                    let r = span.line - row_lo;
                    {
                        let orow64 = &mut out[r * n..(r + 1) * n];
                        view.decode_codes_f32(&mut plane[..span.len], |slot, v| {
                            let arow = acts.row(span.offset + slot);
                            for (o, a) in orow64.iter_mut().zip(arow.iter()) {
                                *o += v * a;
                            }
                        });
                    }
                    let orow32 = &mut lane_acc[r * n..(r + 1) * n];
                    for_col_chunks(n, |c0, width| match width {
                        8 => row_lanes::<8>(
                            &plane[..span.len],
                            acts32,
                            span.offset,
                            n,
                            c0,
                            scale,
                            orow32,
                        ),
                        4 => row_lanes::<4>(
                            &plane[..span.len],
                            acts32,
                            span.offset,
                            n,
                            c0,
                            scale,
                            orow32,
                        ),
                        2 => row_lanes::<2>(
                            &plane[..span.len],
                            acts32,
                            span.offset,
                            n,
                            c0,
                            scale,
                            orow32,
                        ),
                        _ => row_lanes::<1>(
                            &plane[..span.len],
                            acts32,
                            span.offset,
                            n,
                            c0,
                            scale,
                            orow32,
                        ),
                    });
                }
                GroupAxis::OutputChannel => {
                    {
                        let arow = acts.row(span.line);
                        let out_ref = &mut *out;
                        view.decode_codes_f32(&mut plane[..span.len], |slot, v| {
                            let r = span.offset + slot - row_lo;
                            let orow64 = &mut out_ref[r * n..(r + 1) * n];
                            for (o, a) in orow64.iter_mut().zip(arow.iter()) {
                                *o += v * a;
                            }
                        });
                    }
                    let arow32 = &acts32[span.line * n..(span.line + 1) * n];
                    let row0 = span.offset - row_lo;
                    for_col_chunks(n, |c0, width| match width {
                        8 => col_lanes::<8>(
                            &plane[..span.len],
                            arow32,
                            n,
                            c0,
                            scale,
                            row0,
                            &mut lane_acc,
                        ),
                        4 => col_lanes::<4>(
                            &plane[..span.len],
                            arow32,
                            n,
                            c0,
                            scale,
                            row0,
                            &mut lane_acc,
                        ),
                        2 => col_lanes::<2>(
                            &plane[..span.len],
                            arow32,
                            n,
                            c0,
                            scale,
                            row0,
                            &mut lane_acc,
                        ),
                        _ => col_lanes::<1>(
                            &plane[..span.len],
                            arow32,
                            n,
                            c0,
                            scale,
                            row0,
                            &mut lane_acc,
                        ),
                    });
                }
            }
        }
        for (o, &l) in out.iter_mut().zip(lane_acc.iter()) {
            *o += l as f64;
        }
    }

    fn gemv_rows(
        &self,
        ctx: &KernelCtx<'_>,
        layer: &PackedLayer,
        x: &[f64],
        row_lo: usize,
        row_hi: usize,
        out: &mut [f64],
    ) {
        assert!(
            layer.macro_block() <= MAX_GROUP,
            "lane kernel group plane holds at most {MAX_GROUP} slots"
        );
        // Restricted ranges visit the same groups in the same per-element
        // order as the full range (groups_for_rows keeps per-row k
        // ascending), so tiled GEMV stitches bitwise — the parallel-GEMV
        // determinism contract.
        let local32: Vec<f32>;
        let x32: &[f32] = match ctx.acts32 {
            Some(shared) => {
                debug_assert_eq!(shared.len(), x.len(), "acts32 shape");
                shared
            }
            None => {
                local32 = x.iter().map(|&v| v as f32).collect();
                &local32
            }
        };
        let mut lane_acc = vec![0.0_f32; row_hi - row_lo];
        let mut plane = [0.0_f32; MAX_GROUP];
        let axis = layer.axis();
        for g in groups_for_rows(layer, row_lo, row_hi) {
            let view = layer.group(g);
            let span = view.span();
            let scale = view.isf().value() as f32;
            match axis {
                GroupAxis::DotProduct => {
                    let r = span.line - row_lo;
                    {
                        let acc = &mut out[r];
                        view.decode_codes_f32(&mut plane[..span.len], |slot, v| {
                            *acc += v * x[span.offset + slot];
                        });
                    }
                    let dot = dot_lanes(
                        &plane[..span.len],
                        &x32[span.offset..span.offset + span.len],
                    );
                    lane_acc[r] += scale * dot;
                }
                GroupAxis::OutputChannel => {
                    {
                        let out_ref = &mut *out;
                        view.decode_codes_f32(&mut plane[..span.len], |slot, v| {
                            out_ref[span.offset + slot - row_lo] += v * x[span.line];
                        });
                    }
                    let m = scale * x32[span.line];
                    if m != 0.0 {
                        let row0 = span.offset - row_lo;
                        let orows = &mut lane_acc[row0..row0 + span.len];
                        for (o, &c) in orows.iter_mut().zip(plane[..span.len].iter()) {
                            *o += m * c;
                        }
                    }
                }
            }
        }
        for (o, &l) in out.iter_mut().zip(lane_acc.iter()) {
            *o += l as f64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::synth::{synth_packed, SynthSpec};
    use super::super::{fused_gemm_serial, fused_gemv_serial};
    use super::*;
    use microscopiq_linalg::SeededRng;

    fn check_within(tol: Tolerance, got: &[f64], oracle: &[f64], what: &str) {
        assert_eq!(got.len(), oracle.len());
        for (i, (&a, &b)) in got.iter().zip(oracle.iter()).enumerate() {
            assert!(
                tol.accepts(a, b),
                "{what}: element {i} off by {} (allowed {})",
                (a - b).abs(),
                tol.allowed(b)
            );
        }
    }

    #[test]
    fn lane_gemm_matches_oracle_within_pin_all_regimes() {
        for axis in [GroupAxis::DotProduct, GroupAxis::OutputChannel] {
            for bits in [2u32, 4] {
                for rate in [0.0, 0.1, 0.9] {
                    let layer = synth_packed(&SynthSpec {
                        axis,
                        d_row: 48,
                        d_col: 64,
                        bits,
                        outlier_rate: rate,
                        seed: 11,
                        ..SynthSpec::default()
                    });
                    let mut rng = SeededRng::new(5);
                    // n = 13 exercises the 8 + 4 + 1 chunk split.
                    let acts = Matrix::from_fn(64, 13, |_, _| rng.normal(0.0, 1.0));
                    let oracle = fused_gemm_serial(&layer, &acts);
                    let mut got = Matrix::zeros(48, 13);
                    LaneKernel.gemm_rows(
                        &KernelCtx::uncached(),
                        &layer,
                        &acts,
                        0,
                        48,
                        got.as_mut_slice(),
                    );
                    check_within(
                        LaneKernel.tolerance(),
                        got.as_slice(),
                        oracle.as_slice(),
                        &format!("{axis:?} bits={bits} rate={rate}"),
                    );
                }
            }
        }
    }

    #[test]
    fn lane_gemm_row_tiles_stitch_to_full_result() {
        let layer = synth_packed(&SynthSpec {
            axis: GroupAxis::DotProduct,
            d_row: 32,
            d_col: 48,
            bits: 2,
            outlier_rate: 0.15,
            seed: 23,
            ..SynthSpec::default()
        });
        let mut rng = SeededRng::new(6);
        let acts = Matrix::from_fn(48, 9, |_, _| rng.normal(0.0, 1.0));
        let mut full = Matrix::zeros(32, 9);
        LaneKernel.gemm_rows(
            &KernelCtx::uncached(),
            &layer,
            &acts,
            0,
            32,
            full.as_mut_slice(),
        );
        // 32 rows in tiles of 10/10/10/2 — tiled execution must equal the
        // single-call result exactly (each row's sum order is unchanged).
        let mut stitched = Matrix::zeros(32, 9);
        for (lo, hi) in [(0usize, 10usize), (10, 20), (20, 30), (30, 32)] {
            let mut tile = vec![0.0_f64; (hi - lo) * 9];
            LaneKernel.gemm_rows(&KernelCtx::uncached(), &layer, &acts, lo, hi, &mut tile);
            stitched.as_mut_slice()[lo * 9..hi * 9].copy_from_slice(&tile);
        }
        assert_eq!(full, stitched);
    }

    #[test]
    fn lane_gemv_matches_oracle_within_pin() {
        for axis in [GroupAxis::DotProduct, GroupAxis::OutputChannel] {
            for bits in [2u32, 4] {
                let layer = synth_packed(&SynthSpec {
                    axis,
                    d_row: 40,
                    d_col: 56,
                    bits,
                    outlier_rate: 0.2,
                    seed: 31,
                    ..SynthSpec::default()
                });
                let mut rng = SeededRng::new(9);
                let x: Vec<f64> = (0..56).map(|_| rng.normal(0.0, 1.0)).collect();
                let oracle = fused_gemv_serial(&layer, &x);
                let mut got = vec![0.0_f64; 40];
                LaneKernel.gemv(&KernelCtx::uncached(), &layer, &x, &mut got);
                check_within(
                    LaneKernel.tolerance(),
                    &got,
                    &oracle,
                    &format!("gemv {axis:?} bits={bits}"),
                );
            }
        }
    }

    #[test]
    fn shared_f32_image_equals_local_conversion() {
        // A tiled caller hands the same f32 image through the context
        // that the kernel would build itself — results must be identical
        // bit for bit.
        let layer = synth_packed(&SynthSpec {
            axis: GroupAxis::DotProduct,
            d_row: 24,
            d_col: 48,
            bits: 2,
            outlier_rate: 0.1,
            seed: 41,
            ..SynthSpec::default()
        });
        assert!(LaneKernel.wants_f32_acts());
        let mut rng = SeededRng::new(42);
        let acts = Matrix::from_fn(48, 9, |_, _| rng.normal(0.0, 1.0));
        let mut local = vec![0.0_f64; 24 * 9];
        LaneKernel.gemm_rows(&KernelCtx::uncached(), &layer, &acts, 0, 24, &mut local);
        let image: Vec<f32> = acts.as_slice().iter().map(|&v| v as f32).collect();
        let mut shared = vec![0.0_f64; 24 * 9];
        LaneKernel.gemm_rows(
            &KernelCtx::uncached().with_acts32(&image),
            &layer,
            &acts,
            0,
            24,
            &mut shared,
        );
        assert_eq!(local, shared);
    }

    #[test]
    fn dispatch_advice_rejects_unsupported_regimes() {
        let k = LaneKernel;
        let ctx = KernelCtx::uncached();
        let key = |group, frac| DispatchKey {
            m: 8,
            bits: 2,
            outlier_frac: frac,
            group,
        };
        assert!(k.supports(&key(64, 0.03), &ctx));
        assert!(
            !k.supports(&key(MAX_GROUP + 1, 0.03), &ctx),
            "group too big"
        );
        assert!(!k.supports(&key(64, 0.8), &ctx), "outlier-heavy");
    }
}
