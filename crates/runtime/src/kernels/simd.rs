//! The explicit `std::arch` SIMD kernel: AVX2+FMA on `x86_64`, NEON on
//! `aarch64`, selected by **runtime feature detection** so one binary
//! runs everywhere and only fast hosts register the fast path.
//!
//! Strategy — the same shape as the lane kernel (stack-resident planes,
//! hoisted per-group scale, exact `f64` outlier fixups), but with the
//! decode *fused into the SIMD registers*: 8 code bytes load with one
//! `movq`, widen to 32-bit lanes, sign-extend by a left/right shift pair
//! (`8 − bb` bits — the same trick the scalar decode uses, vectorized),
//! convert to `f32`, and feed an FMA against the activation lanes. On the
//! GEMV path no decoded plane is ever materialized for meta-less
//! micro-blocks: codes go from packed bytes to partial sums in registers,
//! which is what closes the gap to the paper's PE datapath.
//!
//! Construction is fallible: [`SimdKernel::try_new`] returns `None` when
//! the host lacks the features (or when `MICROSCOPIQ_SIMD=off` force-
//! disables it), so a registered instance *proves* detection passed and
//! the `unsafe` `#[target_feature]` calls are sound.
//!
//! Numerics match the lane kernel: `f32` inlier accumulation under
//! [`Tolerance::Rel`], exact `f64` outliers.

use super::lane::MAX_OUTLIER_FRAC;
use super::{DispatchKey, KernelCtx, MicroKernel, Tolerance, MAX_GROUP};
use microscopiq_core::packed::PackedLayer;
use microscopiq_linalg::Matrix;

/// Registry name of the explicit SIMD kernel.
pub const SIMD_KERNEL: &str = "simd-f32";

/// Which instruction set the kernel was validated for at construction.
/// Uninhabited on architectures with no SIMD path, so the kernel cannot
/// be built there.
#[derive(Debug, Clone, Copy)]
enum Isa {
    #[cfg(target_arch = "x86_64")]
    Avx2Fma,
    #[cfg(target_arch = "aarch64")]
    Neon,
}

/// Whether the value of `MICROSCOPIQ_SIMD` disables the SIMD kernel.
/// Pure so tests can exercise the parsing without mutating the process
/// environment.
pub(crate) fn env_disables(value: Option<&str>) -> bool {
    matches!(
        value.map(str::trim).map(str::to_ascii_lowercase).as_deref(),
        Some("off" | "0" | "false" | "no")
    )
}

/// Every CPU feature the SIMD kernel can use, with whether this host has
/// it — for bench reports and the `microscopiq_cpu_feature` metric, so
/// bench trajectories across machines stay comparable.
pub fn detected_cpu_features() -> Vec<(&'static str, bool)> {
    #[cfg(target_arch = "x86_64")]
    {
        vec![
            ("avx2", std::arch::is_x86_feature_detected!("avx2")),
            ("fma", std::arch::is_x86_feature_detected!("fma")),
            ("neon", false),
        ]
    }
    #[cfg(target_arch = "aarch64")]
    {
        // NEON is baseline on aarch64.
        vec![("avx2", false), ("fma", false), ("neon", true)]
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        vec![("avx2", false), ("fma", false), ("neon", false)]
    }
}

/// The explicit SIMD kernel. Any instance proves runtime feature
/// detection passed — there is no public constructor that skips it.
#[derive(Debug, Clone, Copy)]
pub struct SimdKernel {
    isa: Isa,
}

impl SimdKernel {
    /// Builds the kernel iff the host supports a SIMD path and
    /// `MICROSCOPIQ_SIMD` does not force-disable it.
    pub fn try_new() -> Option<Self> {
        if env_disables(std::env::var("MICROSCOPIQ_SIMD").ok().as_deref()) {
            return None;
        }
        Self::detect()
    }

    fn detect() -> Option<Self> {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                return Some(Self { isa: Isa::Avx2Fma });
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            return Some(Self { isa: Isa::Neon });
        }
        #[allow(unreachable_code)]
        None
    }

    /// Human-readable name of the instruction set in use.
    pub fn isa_name(&self) -> &'static str {
        match self.isa {
            #[cfg(target_arch = "x86_64")]
            Isa::Avx2Fma => "avx2+fma",
            #[cfg(target_arch = "aarch64")]
            Isa::Neon => "neon",
        }
    }
}

impl MicroKernel for SimdKernel {
    fn name(&self) -> &'static str {
        SIMD_KERNEL
    }

    fn tolerance(&self) -> Tolerance {
        // Same numerics class as the lane kernel: f32 inlier accumulation,
        // exact f64 outliers.
        Tolerance::Rel(1e-3)
    }

    fn supports(&self, key: &DispatchKey, _ctx: &KernelCtx<'_>) -> bool {
        key.group <= MAX_GROUP && key.outlier_frac <= MAX_OUTLIER_FRAC
    }

    fn wants_f32_acts(&self) -> bool {
        true
    }

    fn gemm_rows(
        &self,
        ctx: &KernelCtx<'_>,
        layer: &PackedLayer,
        acts: &Matrix,
        row_lo: usize,
        row_hi: usize,
        out: &mut [f64],
    ) {
        assert!(
            layer.macro_block() <= MAX_GROUP,
            "simd kernel group plane holds at most {MAX_GROUP} slots"
        );
        let local32: Vec<f32>;
        let acts32: &[f32] = match ctx.acts32 {
            Some(shared) => {
                debug_assert_eq!(shared.len(), acts.as_slice().len(), "acts32 shape");
                shared
            }
            None => {
                local32 = acts.as_slice().iter().map(|&v| v as f32).collect();
                &local32
            }
        };
        match self.isa {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `self` exists only if AVX2+FMA detection passed.
            Isa::Avx2Fma => unsafe { avx2::gemm_rows(layer, acts, acts32, row_lo, row_hi, out) },
            #[cfg(target_arch = "aarch64")]
            // SAFETY: NEON is baseline on aarch64.
            Isa::Neon => unsafe { neon::gemm_rows(layer, acts, acts32, row_lo, row_hi, out) },
        }
    }

    fn gemv_rows(
        &self,
        ctx: &KernelCtx<'_>,
        layer: &PackedLayer,
        x: &[f64],
        row_lo: usize,
        row_hi: usize,
        out: &mut [f64],
    ) {
        assert!(
            layer.macro_block() <= MAX_GROUP,
            "simd kernel group plane holds at most {MAX_GROUP} slots"
        );
        let local32: Vec<f32>;
        let x32: &[f32] = match ctx.acts32 {
            Some(shared) => {
                debug_assert_eq!(shared.len(), x.len(), "acts32 shape");
                shared
            }
            None => {
                local32 = x.iter().map(|&v| v as f32).collect();
                &local32
            }
        };
        match self.isa {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `self` exists only if AVX2+FMA detection passed.
            Isa::Avx2Fma => unsafe { avx2::gemv_rows(layer, x, x32, row_lo, row_hi, out) },
            #[cfg(target_arch = "aarch64")]
            // SAFETY: NEON is baseline on aarch64.
            Isa::Neon => unsafe { neon::gemv_rows(layer, x, x32, row_lo, row_hi, out) },
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::super::{decode_code, groups_for_rows, MAX_GROUP};
    use microscopiq_core::config::GroupAxis;
    use microscopiq_core::packed::{GroupView, PackedLayer};
    use microscopiq_linalg::Matrix;
    use std::arch::x86_64::*;

    /// Horizontal sum of the 8 `f32` lanes.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn hsum256(v: __m256) -> f32 {
        let hi = _mm256_extractf128_ps::<1>(v);
        let lo = _mm256_castps256_ps128(v);
        let s = _mm_add_ps(lo, hi);
        let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
        let s = _mm_add_ss(s, _mm_shuffle_ps::<1>(s, s));
        _mm_cvtss_f32(s)
    }

    /// Decodes 8 packed code bytes to `f32` lanes: widen `u8 → i32`, then
    /// sign-extend by a `<< (32−bb) >> (32−bb)` shift pair.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn decode8(codes: *const u8, shift: __m128i) -> __m256 {
        let raw = _mm_loadl_epi64(codes as *const __m128i);
        let wide = _mm256_cvtepu8_epi32(raw);
        let ext = _mm256_sra_epi32(_mm256_sll_epi32(wide, shift), shift);
        _mm256_cvtepi32_ps(ext)
    }

    /// Decodes one whole group's unscaled codes into `plane` with SIMD
    /// (8 bytes per step), routing outlier-bearing micro-blocks through
    /// the exact scalar decode and reporting each outlier's exact value
    /// (group-relative slot) through `on_outlier`.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn decode_group_plane(
        view: &GroupView<'_>,
        bb: u32,
        shift: __m128i,
        plane: &mut [f32],
        mut on_outlier: impl FnMut(usize, f64),
    ) {
        let mut base = 0usize;
        for i in 0..view.micro_block_count() {
            let codes = view.micro_block_codes(i);
            if view.micro_block_has_outliers(i) {
                view.decode_micro_block_codes_f32(i, &mut plane[base..], |slot, v| {
                    on_outlier(base + slot, v);
                });
            } else {
                let mut j = 0usize;
                while j + 8 <= codes.len() {
                    let w = decode8(codes.as_ptr().add(j), shift);
                    _mm256_storeu_ps(plane.as_mut_ptr().add(base + j), w);
                    j += 8;
                }
                for (k, &c) in codes.iter().enumerate().skip(j) {
                    plane[base + k] = decode_code(c, bb);
                }
            }
            base += codes.len();
        }
    }

    /// The GEMV kernel body: for meta-less micro-blocks the codes decode
    /// and FMA entirely in registers — no plane store.
    ///
    /// The `DotProduct` branch iterates line-outer / mab-inner with
    /// incrementally computed spans. Each output element's contributions
    /// still arrive in ascending-mab order — exactly the order
    /// [`groups_for_rows`] produces for that element — so results are
    /// bitwise identical to the generic walk, but the groups array and
    /// the code bytes stream sequentially, there is no per-group
    /// `div`/`mod` span math, and the FMA stream splits over two
    /// accumulators to break the loop-carried dependency chain.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn gemv_rows(
        layer: &PackedLayer,
        x: &[f64],
        x32: &[f32],
        row_lo: usize,
        row_hi: usize,
        out: &mut [f64],
    ) {
        let bb = layer.inlier_bits();
        let shift = _mm_cvtsi32_si128(32 - bb as i32);
        let mut lane_acc = vec![0.0_f32; row_hi - row_lo];
        let mut mb_buf = [0.0_f32; MAX_GROUP];
        if layer.axis() == GroupAxis::DotProduct {
            let per_line = layer.groups_per_line();
            let line_len = layer.line_len();
            let macro_block = layer.macro_block();
            for line in row_lo..row_hi {
                let r = line - row_lo;
                for mab in 0..per_line {
                    let offset = mab * macro_block;
                    let view = layer.group(line * per_line + mab);
                    let scale = view.isf().value() as f32;
                    let mut acc0 = _mm256_setzero_ps();
                    let mut acc1 = _mm256_setzero_ps();
                    let mut tail = 0.0_f32;
                    let mut base = offset;
                    for (i, (codes, has_outliers)) in view.micro_blocks_raw().enumerate() {
                        if has_outliers {
                            let buf = &mut mb_buf[..codes.len()];
                            view.decode_micro_block_codes_f32(i, buf, |slot, v| {
                                out[r] += v * x[base + slot];
                            });
                            for (k, &w) in buf.iter().enumerate() {
                                tail += w * x32[base + k];
                            }
                        } else {
                            let mut j = 0usize;
                            while j + 16 <= codes.len() {
                                let w0 = decode8(codes.as_ptr().add(j), shift);
                                let a0 = _mm256_loadu_ps(x32.as_ptr().add(base + j));
                                acc0 = _mm256_fmadd_ps(w0, a0, acc0);
                                let w1 = decode8(codes.as_ptr().add(j + 8), shift);
                                let a1 = _mm256_loadu_ps(x32.as_ptr().add(base + j + 8));
                                acc1 = _mm256_fmadd_ps(w1, a1, acc1);
                                j += 16;
                            }
                            if j + 8 <= codes.len() {
                                let w = decode8(codes.as_ptr().add(j), shift);
                                let a = _mm256_loadu_ps(x32.as_ptr().add(base + j));
                                // Alternate the spare 8-wide block between
                                // accumulators by micro-block parity so
                                // back-to-back micro-blocks don't stall on
                                // one FMA chain.
                                if i & 1 == 0 {
                                    acc0 = _mm256_fmadd_ps(w, a, acc0);
                                } else {
                                    acc1 = _mm256_fmadd_ps(w, a, acc1);
                                }
                                j += 8;
                            }
                            for (k, &c) in codes.iter().enumerate().skip(j) {
                                tail += decode_code(c, bb) * x32[base + k];
                            }
                        }
                        base += codes.len();
                    }
                    debug_assert_eq!(base - offset, (line_len - offset).min(macro_block));
                    lane_acc[r] += scale * (hsum256(_mm256_add_ps(acc0, acc1)) + tail);
                }
            }
            for (o, &l) in out.iter_mut().zip(lane_acc.iter()) {
                *o += l as f64;
            }
            return;
        }
        for g in groups_for_rows(layer, row_lo, row_hi) {
            let view = layer.group(g);
            let span = view.span();
            let scale = view.isf().value() as f32;
            match layer.axis() {
                GroupAxis::DotProduct => unreachable!("handled above"),
                GroupAxis::OutputChannel => {
                    let row0 = span.offset - row_lo;
                    let m = scale * x32[span.line];
                    let mv = _mm256_set1_ps(m);
                    let mut base = 0usize;
                    for i in 0..view.micro_block_count() {
                        let codes = view.micro_block_codes(i);
                        if view.micro_block_has_outliers(i) {
                            let buf = &mut mb_buf[..codes.len()];
                            view.decode_micro_block_codes_f32(i, buf, |slot, v| {
                                out[row0 + base + slot] += v * x[span.line];
                            });
                            if m != 0.0 {
                                for (k, &w) in buf.iter().enumerate() {
                                    lane_acc[row0 + base + k] += m * w;
                                }
                            }
                        } else if m != 0.0 {
                            let mut j = 0usize;
                            while j + 8 <= codes.len() {
                                let w = decode8(codes.as_ptr().add(j), shift);
                                let o = _mm256_loadu_ps(lane_acc.as_ptr().add(row0 + base + j));
                                _mm256_storeu_ps(
                                    lane_acc.as_mut_ptr().add(row0 + base + j),
                                    _mm256_fmadd_ps(w, mv, o),
                                );
                                j += 8;
                            }
                            for (k, &c) in codes.iter().enumerate().skip(j) {
                                lane_acc[row0 + base + k] += m * decode_code(c, bb);
                            }
                        }
                        base += codes.len();
                    }
                }
            }
        }
        for (o, &l) in out.iter_mut().zip(lane_acc.iter()) {
            *o += l as f64;
        }
    }

    /// The GEMM kernel body: SIMD group decode into a stack plane, then
    /// 8-wide column-block FMAs per plane element.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn gemm_rows(
        layer: &PackedLayer,
        acts: &Matrix,
        acts32: &[f32],
        row_lo: usize,
        row_hi: usize,
        out: &mut [f64],
    ) {
        let bb = layer.inlier_bits();
        let shift = _mm_cvtsi32_si128(32 - bb as i32);
        let n = acts.cols();
        let mut lane_acc = vec![0.0_f32; (row_hi - row_lo) * n];
        let mut plane = [0.0_f32; MAX_GROUP];
        let axis = layer.axis();
        for g in groups_for_rows(layer, row_lo, row_hi) {
            let view = layer.group(g);
            let span = view.span();
            let scale = view.isf().value() as f32;
            match axis {
                GroupAxis::DotProduct => {
                    let r = span.line - row_lo;
                    {
                        let orow64 = &mut out[r * n..(r + 1) * n];
                        decode_group_plane(&view, bb, shift, &mut plane[..span.len], |slot, v| {
                            let arow = acts.row(span.offset + slot);
                            for (o, a) in orow64.iter_mut().zip(arow.iter()) {
                                *o += v * a;
                            }
                        });
                    }
                    let sv = _mm256_set1_ps(scale);
                    let orow32 = &mut lane_acc[r * n..(r + 1) * n];
                    let mut c0 = 0usize;
                    while c0 + 8 <= n {
                        let mut acc = _mm256_setzero_ps();
                        for (i, &w) in plane[..span.len].iter().enumerate() {
                            let a =
                                _mm256_loadu_ps(acts32.as_ptr().add((span.offset + i) * n + c0));
                            acc = _mm256_fmadd_ps(_mm256_set1_ps(w), a, acc);
                        }
                        let o = _mm256_loadu_ps(orow32.as_ptr().add(c0));
                        _mm256_storeu_ps(orow32.as_mut_ptr().add(c0), _mm256_fmadd_ps(sv, acc, o));
                        c0 += 8;
                    }
                    for c in c0..n {
                        let mut acc = 0.0_f32;
                        for (i, &w) in plane[..span.len].iter().enumerate() {
                            acc += w * acts32[(span.offset + i) * n + c];
                        }
                        orow32[c] += scale * acc;
                    }
                }
                GroupAxis::OutputChannel => {
                    {
                        let arow = acts.row(span.line);
                        let out_ref = &mut *out;
                        decode_group_plane(&view, bb, shift, &mut plane[..span.len], |slot, v| {
                            let r = span.offset + slot - row_lo;
                            let orow64 = &mut out_ref[r * n..(r + 1) * n];
                            for (o, a) in orow64.iter_mut().zip(arow.iter()) {
                                *o += v * a;
                            }
                        });
                    }
                    let arow32 = &acts32[span.line * n..(span.line + 1) * n];
                    let row0 = span.offset - row_lo;
                    for (i, &w) in plane[..span.len].iter().enumerate() {
                        if w == 0.0 {
                            continue;
                        }
                        let m = scale * w;
                        let mv = _mm256_set1_ps(m);
                        let orow32 = &mut lane_acc[(row0 + i) * n..(row0 + i + 1) * n];
                        let mut c0 = 0usize;
                        while c0 + 8 <= n {
                            let a = _mm256_loadu_ps(arow32.as_ptr().add(c0));
                            let o = _mm256_loadu_ps(orow32.as_ptr().add(c0));
                            _mm256_storeu_ps(
                                orow32.as_mut_ptr().add(c0),
                                _mm256_fmadd_ps(mv, a, o),
                            );
                            c0 += 8;
                        }
                        for c in c0..n {
                            orow32[c] += m * arow32[c];
                        }
                    }
                }
            }
        }
        for (o, &l) in out.iter_mut().zip(lane_acc.iter()) {
            *o += l as f64;
        }
    }
}

#[cfg(target_arch = "aarch64")]
mod neon {
    use super::super::{decode_code, groups_for_rows, MAX_GROUP};
    use microscopiq_core::config::GroupAxis;
    use microscopiq_core::packed::{GroupView, PackedLayer};
    use microscopiq_linalg::Matrix;
    use std::arch::aarch64::*;

    /// Decodes 8 packed code bytes into two 4-lane `f32` vectors: widen
    /// `u8 → u16 → i32`, sign-extend with a positive-then-negative shift
    /// pair.
    #[inline]
    #[target_feature(enable = "neon")]
    unsafe fn decode8(
        codes: *const u8,
        shl: int32x4_t,
        shr: int32x4_t,
    ) -> (float32x4_t, float32x4_t) {
        let raw = vld1_u8(codes);
        let wide16 = vmovl_u8(raw);
        let lo = vreinterpretq_s32_u32(vmovl_u16(vget_low_u16(wide16)));
        let hi = vreinterpretq_s32_u32(vmovl_u16(vget_high_u16(wide16)));
        let lo = vshlq_s32(vshlq_s32(lo, shl), shr);
        let hi = vshlq_s32(vshlq_s32(hi, shl), shr);
        (vcvtq_f32_s32(lo), vcvtq_f32_s32(hi))
    }

    #[target_feature(enable = "neon")]
    unsafe fn decode_group_plane(
        view: &GroupView<'_>,
        bb: u32,
        shl: int32x4_t,
        shr: int32x4_t,
        plane: &mut [f32],
        mut on_outlier: impl FnMut(usize, f64),
    ) {
        let mut base = 0usize;
        for i in 0..view.micro_block_count() {
            let codes = view.micro_block_codes(i);
            if view.micro_block_has_outliers(i) {
                view.decode_micro_block_codes_f32(i, &mut plane[base..], |slot, v| {
                    on_outlier(base + slot, v);
                });
            } else {
                let mut j = 0usize;
                while j + 8 <= codes.len() {
                    let (lo, hi) = decode8(codes.as_ptr().add(j), shl, shr);
                    vst1q_f32(plane.as_mut_ptr().add(base + j), lo);
                    vst1q_f32(plane.as_mut_ptr().add(base + j + 4), hi);
                    j += 8;
                }
                for (k, &c) in codes.iter().enumerate().skip(j) {
                    plane[base + k] = decode_code(c, bb);
                }
            }
            base += codes.len();
        }
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn gemv_rows(
        layer: &PackedLayer,
        x: &[f64],
        x32: &[f32],
        row_lo: usize,
        row_hi: usize,
        out: &mut [f64],
    ) {
        let bb = layer.inlier_bits();
        let shl = vdupq_n_s32(32 - bb as i32);
        let shr = vdupq_n_s32(-(32 - bb as i32));
        let mut lane_acc = vec![0.0_f32; row_hi - row_lo];
        let mut mb_buf = [0.0_f32; MAX_GROUP];
        // Line-outer / mab-inner, like the AVX2 body: per-element
        // accumulation order is still ascending-mab (bitwise identical to
        // the groups_for_rows walk) while the groups array and code bytes
        // stream sequentially.
        if layer.axis() == GroupAxis::DotProduct {
            let per_line = layer.groups_per_line();
            let macro_block = layer.macro_block();
            for line in row_lo..row_hi {
                let r = line - row_lo;
                for mab in 0..per_line {
                    let offset = mab * macro_block;
                    let view = layer.group(line * per_line + mab);
                    let scale = view.isf().value() as f32;
                    let mut acc0 = vdupq_n_f32(0.0);
                    let mut acc1 = vdupq_n_f32(0.0);
                    let mut tail = 0.0_f32;
                    let mut base = offset;
                    for (i, (codes, has_outliers)) in view.micro_blocks_raw().enumerate() {
                        if has_outliers {
                            let buf = &mut mb_buf[..codes.len()];
                            view.decode_micro_block_codes_f32(i, buf, |slot, v| {
                                out[r] += v * x[base + slot];
                            });
                            for (k, &w) in buf.iter().enumerate() {
                                tail += w * x32[base + k];
                            }
                        } else {
                            let mut j = 0usize;
                            while j + 8 <= codes.len() {
                                let (wlo, whi) = decode8(codes.as_ptr().add(j), shl, shr);
                                let alo = vld1q_f32(x32.as_ptr().add(base + j));
                                let ahi = vld1q_f32(x32.as_ptr().add(base + j + 4));
                                acc0 = vfmaq_f32(acc0, wlo, alo);
                                acc1 = vfmaq_f32(acc1, whi, ahi);
                                j += 8;
                            }
                            for (k, &c) in codes.iter().enumerate().skip(j) {
                                tail += decode_code(c, bb) * x32[base + k];
                            }
                        }
                        base += codes.len();
                    }
                    lane_acc[r] += scale * (vaddvq_f32(vaddq_f32(acc0, acc1)) + tail);
                }
            }
            for (o, &l) in out.iter_mut().zip(lane_acc.iter()) {
                *o += l as f64;
            }
            return;
        }
        for g in groups_for_rows(layer, row_lo, row_hi) {
            let view = layer.group(g);
            let span = view.span();
            let scale = view.isf().value() as f32;
            match layer.axis() {
                GroupAxis::DotProduct => unreachable!("handled above"),
                GroupAxis::OutputChannel => {
                    let row0 = span.offset - row_lo;
                    let m = scale * x32[span.line];
                    let mv = vdupq_n_f32(m);
                    let mut base = 0usize;
                    for i in 0..view.micro_block_count() {
                        let codes = view.micro_block_codes(i);
                        if view.micro_block_has_outliers(i) {
                            let buf = &mut mb_buf[..codes.len()];
                            view.decode_micro_block_codes_f32(i, buf, |slot, v| {
                                out[row0 + base + slot] += v * x[span.line];
                            });
                            if m != 0.0 {
                                for (k, &w) in buf.iter().enumerate() {
                                    lane_acc[row0 + base + k] += m * w;
                                }
                            }
                        } else if m != 0.0 {
                            let mut j = 0usize;
                            while j + 8 <= codes.len() {
                                let (wlo, whi) = decode8(codes.as_ptr().add(j), shl, shr);
                                let p = lane_acc.as_mut_ptr().add(row0 + base + j);
                                vst1q_f32(p, vfmaq_f32(vld1q_f32(p), wlo, mv));
                                let p4 = p.add(4);
                                vst1q_f32(p4, vfmaq_f32(vld1q_f32(p4), whi, mv));
                                j += 8;
                            }
                            for (k, &c) in codes.iter().enumerate().skip(j) {
                                lane_acc[row0 + base + k] += m * decode_code(c, bb);
                            }
                        }
                        base += codes.len();
                    }
                }
            }
        }
        for (o, &l) in out.iter_mut().zip(lane_acc.iter()) {
            *o += l as f64;
        }
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn gemm_rows(
        layer: &PackedLayer,
        acts: &Matrix,
        acts32: &[f32],
        row_lo: usize,
        row_hi: usize,
        out: &mut [f64],
    ) {
        let bb = layer.inlier_bits();
        let shl = vdupq_n_s32(32 - bb as i32);
        let shr = vdupq_n_s32(-(32 - bb as i32));
        let n = acts.cols();
        let mut lane_acc = vec![0.0_f32; (row_hi - row_lo) * n];
        let mut plane = [0.0_f32; MAX_GROUP];
        let axis = layer.axis();
        for g in groups_for_rows(layer, row_lo, row_hi) {
            let view = layer.group(g);
            let span = view.span();
            let scale = view.isf().value() as f32;
            match axis {
                GroupAxis::DotProduct => {
                    let r = span.line - row_lo;
                    {
                        let orow64 = &mut out[r * n..(r + 1) * n];
                        decode_group_plane(
                            &view,
                            bb,
                            shl,
                            shr,
                            &mut plane[..span.len],
                            |slot, v| {
                                let arow = acts.row(span.offset + slot);
                                for (o, a) in orow64.iter_mut().zip(arow.iter()) {
                                    *o += v * a;
                                }
                            },
                        );
                    }
                    let orow32 = &mut lane_acc[r * n..(r + 1) * n];
                    let mut c0 = 0usize;
                    while c0 + 4 <= n {
                        let mut acc = vdupq_n_f32(0.0);
                        for (i, &w) in plane[..span.len].iter().enumerate() {
                            let a = vld1q_f32(acts32.as_ptr().add((span.offset + i) * n + c0));
                            acc = vfmaq_f32(acc, vdupq_n_f32(w), a);
                        }
                        let p = orow32.as_mut_ptr().add(c0);
                        vst1q_f32(p, vfmaq_f32(vld1q_f32(p), vdupq_n_f32(scale), acc));
                        c0 += 4;
                    }
                    for c in c0..n {
                        let mut acc = 0.0_f32;
                        for (i, &w) in plane[..span.len].iter().enumerate() {
                            acc += w * acts32[(span.offset + i) * n + c];
                        }
                        orow32[c] += scale * acc;
                    }
                }
                GroupAxis::OutputChannel => {
                    {
                        let arow = acts.row(span.line);
                        let out_ref = &mut *out;
                        decode_group_plane(
                            &view,
                            bb,
                            shl,
                            shr,
                            &mut plane[..span.len],
                            |slot, v| {
                                let r = span.offset + slot - row_lo;
                                let orow64 = &mut out_ref[r * n..(r + 1) * n];
                                for (o, a) in orow64.iter_mut().zip(arow.iter()) {
                                    *o += v * a;
                                }
                            },
                        );
                    }
                    let arow32 = &acts32[span.line * n..(span.line + 1) * n];
                    let row0 = span.offset - row_lo;
                    for (i, &w) in plane[..span.len].iter().enumerate() {
                        if w == 0.0 {
                            continue;
                        }
                        let m = scale * w;
                        let mv = vdupq_n_f32(m);
                        let orow32 = &mut lane_acc[(row0 + i) * n..(row0 + i + 1) * n];
                        let mut c0 = 0usize;
                        while c0 + 4 <= n {
                            let a = vld1q_f32(arow32.as_ptr().add(c0));
                            let p = orow32.as_mut_ptr().add(c0);
                            vst1q_f32(p, vfmaq_f32(vld1q_f32(p), mv, a));
                            c0 += 4;
                        }
                        for c in c0..n {
                            orow32[c] += m * arow32[c];
                        }
                    }
                }
            }
        }
        for (o, &l) in out.iter_mut().zip(lane_acc.iter()) {
            *o += l as f64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::synth::{synth_packed, SynthSpec};
    use super::super::{fused_gemm_serial, fused_gemv_serial};
    use super::*;
    use microscopiq_core::config::GroupAxis;
    use microscopiq_linalg::SeededRng;

    #[test]
    fn env_knob_parsing() {
        for v in ["off", "0", "false", "no", " OFF ", "False"] {
            assert!(env_disables(Some(v)), "{v:?} must disable");
        }
        for v in [None, Some(""), Some("on"), Some("1"), Some("auto")] {
            assert!(!env_disables(v), "{v:?} must not disable");
        }
    }

    #[test]
    fn detected_features_report_all_known_flags() {
        let feats = detected_cpu_features();
        let names: Vec<&str> = feats.iter().map(|&(n, _)| n).collect();
        assert_eq!(names, ["avx2", "fma", "neon"]);
    }

    #[test]
    fn simd_matches_oracle_within_pin_when_available() {
        let Some(kernel) = SimdKernel::try_new() else {
            return; // host without a SIMD path: nothing to validate
        };
        assert!(!kernel.isa_name().is_empty());
        for axis in [GroupAxis::DotProduct, GroupAxis::OutputChannel] {
            for bits in [2u32, 4] {
                for rate in [0.0, 0.1, 0.9] {
                    let layer = synth_packed(&SynthSpec {
                        axis,
                        d_row: 48,
                        d_col: 64,
                        bits,
                        outlier_rate: rate,
                        seed: 13,
                        ..SynthSpec::default()
                    });
                    let mut rng = SeededRng::new(8);
                    let acts = Matrix::from_fn(64, 13, |_, _| rng.normal(0.0, 1.0));
                    let oracle = fused_gemm_serial(&layer, &acts);
                    let mut got = vec![0.0_f64; 48 * 13];
                    kernel.gemm_rows(&KernelCtx::uncached(), &layer, &acts, 0, 48, &mut got);
                    let tol = kernel.tolerance();
                    for (&a, &b) in got.iter().zip(oracle.as_slice().iter()) {
                        assert!(
                            tol.accepts(a, b),
                            "{axis:?} bits={bits} rate={rate}: {a} vs {b}"
                        );
                    }

                    let x: Vec<f64> = (0..64).map(|_| rng.normal(0.0, 1.0)).collect();
                    let goracle = fused_gemv_serial(&layer, &x);
                    let mut gv = vec![0.0_f64; 48];
                    kernel.gemv(&KernelCtx::uncached(), &layer, &x, &mut gv);
                    for (&a, &b) in gv.iter().zip(goracle.iter()) {
                        assert!(
                            tol.accepts(a, b),
                            "gemv {axis:?} bits={bits} rate={rate}: {a} vs {b}"
                        );
                    }
                }
            }
        }
    }
}
