//! The pluggable kernel layer: every way the runtime turns a
//! [`PackedLayer`] and an activation matrix into output rows lives behind
//! the [`MicroKernel`] trait, and a [`KernelRegistry`] picks the
//! implementation per call from a [`DispatchKey`] (activation columns
//! `m`, inlier bit width, outlier density, group size).
//!
//! Registered kernels:
//!
//! * [`ScalarKernel`] (`scalar-f64`) — the conformance **oracle**: walks
//!   packed groups in the dense reference's reduction order and
//!   accumulates in `f64`. Bit-identical to `dequantize().matmul(..)`.
//! * [`LaneKernel`] (`lane-f32`) — the lane-blocked SIMD kernel: decodes
//!   each group's unscaled codes into a stack-resident `f32` plane
//!   ([`PackedLayer::group`] → `decode_codes_f32`, no per-block
//!   allocation), runs an unrolled 8-wide FMA inner loop over column
//!   lanes with the per-group scale hoisted out, and fixes outliers up
//!   with exact `f64` multiply-adds. Matches the oracle within a pinned
//!   relative tolerance.
//! * [`BucketedCacheKernel`] (`bucketed-cache`) — executes from the
//!   engine's decoded-tile cache ([`crate::cache`]): code-bucketed tiles
//!   at `bb = 2`, flat `f32` tiles at `bb = 4`. Requires a cache in the
//!   [`KernelCtx`].
//! * [`SimdKernel`] (`simd-f32`) — explicit `std::arch` SIMD: AVX2+FMA on
//!   `x86_64`, NEON on `aarch64`, registered only when runtime feature
//!   detection passes (and not force-disabled via `MICROSCOPIQ_SIMD=off`).
//!   Fuses in-register code decode (shift-based sign extension) with the
//!   FMA reduction; outliers fix up in exact `f64` like the lane kernel.
//! * [`BucketedLaneKernel`] (`bucketed-lane`) — the paper's multiply-free
//!   code-bucketing trick without the decoded-tile cache: per micro-block,
//!   activations accumulate into per-code buckets and one dot with the
//!   decoded code table finishes the group. Shape-specialized for the
//!   `m = 1` GEMV decode path; composes with the `Fast` tier.
//!
//! Selection is governed by [`KernelPolicy`] — see [`dispatch`] for the
//! policy table. The default policy reproduces the pre-dispatch engine
//! bit for bit: scalar when uncached, bucketed tiles when cached.
//!
//! Every kernel pins a [`Tolerance`] against the scalar oracle
//! (`Bitwise` for the oracle itself); the kernel conformance suite
//! (`crates/runtime/tests/kernel_conformance.rs`) sweeps shapes × bit
//! widths × outlier regimes and asserts each registered kernel honors
//! its pin.
//!
//! [`PackedLayer`]: microscopiq_core::packed::PackedLayer
//! [`PackedLayer::group`]: microscopiq_core::packed::PackedLayer::group

pub mod bucketed;
pub mod bucketed_lane;
pub mod dispatch;
pub mod lane;
pub mod scalar;
pub mod simd;
pub mod synth;

pub use bucketed::{BucketedCacheKernel, BUCKETED_KERNEL};
pub use bucketed_lane::{BucketedLaneKernel, BUCKETED_LANE_KERNEL};
pub use dispatch::{KernelMetrics, KernelOp, KernelPolicy, KernelRegistry};
pub use lane::{LaneKernel, LANE_KERNEL, MAX_GROUP};
pub use scalar::{fused_gemm_serial, fused_gemv_serial, ScalarKernel, SCALAR_KERNEL};
pub use simd::{detected_cpu_features, SimdKernel, SIMD_KERNEL};

use crate::cache::DecodedCache;
use microscopiq_core::config::GroupAxis;
use microscopiq_core::packed::{GroupSpan, PackedLayer};
use microscopiq_linalg::Matrix;

/// How far a kernel's output may sit from the scalar oracle. Pinned per
/// kernel and asserted by the conformance suite; loosening a pin is an
/// API change, not a test tweak.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Tolerance {
    /// Every element equals the oracle bit for bit.
    Bitwise,
    /// Max absolute deviation per element.
    Abs(f64),
    /// Max deviation per element of `eps × (1 + |oracle|)` — relative
    /// with an absolute floor, for reduced-precision accumulation whose
    /// error scales with the output magnitude.
    Rel(f64),
}

impl Tolerance {
    /// The largest deviation this tolerance allows for an element whose
    /// oracle value is `reference`.
    pub fn allowed(&self, reference: f64) -> f64 {
        match *self {
            Tolerance::Bitwise => 0.0,
            Tolerance::Abs(eps) => eps,
            Tolerance::Rel(eps) => eps * (1.0 + reference.abs()),
        }
    }

    /// Whether `got` is acceptable against the oracle value `reference`.
    pub fn accepts(&self, got: f64, reference: f64) -> bool {
        match *self {
            Tolerance::Bitwise => got.to_bits() == reference.to_bits(),
            _ => (got - reference).abs() <= self.allowed(reference),
        }
    }
}

/// The shape/content features dispatch keys on: built once per GEMM call
/// from the layer (outlier density is memoized inside [`PackedLayer`], so
/// this is O(1) on the hot path).
#[derive(Debug, Clone, Copy)]
pub struct DispatchKey {
    /// Activation columns (`m = 1` is the decode GEMV shape).
    pub m: usize,
    /// Inlier bit budget `bb` (2 or 4).
    pub bits: u32,
    /// Fraction of micro-blocks carrying outlier metadata.
    pub outlier_frac: f64,
    /// Macro-block (group) size.
    pub group: usize,
}

impl DispatchKey {
    /// The key for one `W · acts` call with `m` activation columns.
    pub fn for_call(layer: &PackedLayer, m: usize) -> Self {
        Self {
            m,
            bits: layer.inlier_bits(),
            outlier_frac: layer.outlier_micro_block_fraction(),
            group: layer.macro_block(),
        }
    }
}

/// Per-call execution context handed to kernels: the engine's decoded-tile
/// cache (with the layer's content fingerprint as cache key), when one is
/// configured, and optionally a shared `f32` image of the activations so
/// tiled callers convert once per GEMM instead of once per tile.
#[derive(Debug, Clone, Copy)]
pub struct KernelCtx<'a> {
    /// `(cache, layer fingerprint)` when the engine runs with a decoded
    /// cache; `None` for cache-less execution.
    pub cache: Option<(&'a DecodedCache, u64)>,
    /// Precomputed `f32` copy of the full activation matrix (row-major,
    /// same shape as `acts`), for kernels that report
    /// [`MicroKernel::wants_f32_acts`]. Kernels fall back to converting
    /// locally when absent.
    pub acts32: Option<&'a [f32]>,
}

impl<'a> KernelCtx<'a> {
    /// A cache-less context.
    pub fn uncached() -> Self {
        Self {
            cache: None,
            acts32: None,
        }
    }

    /// A context backed by a decoded-tile cache keyed by the layer's
    /// content fingerprint.
    pub fn cached(cache: &'a DecodedCache, layer_id: u64) -> Self {
        Self {
            cache: Some((cache, layer_id)),
            acts32: None,
        }
    }

    /// The same context with a precomputed `f32` activation image
    /// attached (must be the row-major conversion of the `acts` the
    /// kernel will be called with).
    pub fn with_acts32(self, acts32: &'a [f32]) -> Self {
        Self {
            acts32: Some(acts32),
            ..self
        }
    }
}

/// One fused dequant-GEMM implementation. Kernels are stateless (any
/// per-call state lives in [`KernelCtx`] or on the stack), so one
/// instance serves every thread of the parallel executor.
///
/// The contract: `gemm_rows` *accumulates* `W · acts` for output rows
/// `[row_lo, row_hi)` into a zeroed, row-major `(row_hi − row_lo) ×
/// acts.cols()` buffer, and the result must match the scalar oracle
/// within [`MicroKernel::tolerance`]. `supports` is performance advice
/// for the dispatcher, not a correctness gate — a kernel invoked directly
/// outside its preferred regime must still meet its tolerance.
pub trait MicroKernel: Send + Sync + std::fmt::Debug {
    /// Registry name (also what [`KernelPolicy::Named`] selects).
    fn name(&self) -> &'static str;

    /// Pinned deviation bound against the scalar oracle.
    fn tolerance(&self) -> Tolerance;

    /// Whether the dispatcher should consider this kernel for a call.
    fn supports(&self, key: &DispatchKey, ctx: &KernelCtx<'_>) -> bool;

    /// Whether the kernel reads [`KernelCtx::acts32`] when present — a
    /// tiled caller then converts the activations once per GEMM rather
    /// than paying one conversion per tile.
    fn wants_f32_acts(&self) -> bool {
        false
    }

    /// Accumulates output rows `[row_lo, row_hi)` of `W · acts` into
    /// `out` (zeroed, row-major `(row_hi − row_lo) × acts.cols()`).
    ///
    /// Precondition: on an [`GroupAxis::OutputChannel`] layer, `row_lo`
    /// and `row_hi` must align to macro-block boundaries (`row_hi`
    /// may be `d_row`) — groups span whole macro-blocks of output rows
    /// there, and every shipped kernel indexes `span.offset - row_lo`
    /// on that assumption. [`RuntimeEngine`](crate::RuntimeEngine)
    /// quantizes its tile edges accordingly; direct callers must too.
    /// `DotProduct` tiles may cut anywhere.
    ///
    /// # Panics
    ///
    /// May panic on dimension mismatches (`acts.rows() != layer.d_col()`,
    /// `out` too short) — the engine validates before dispatching — and
    /// on unaligned `OutputChannel` row ranges (usize underflow).
    fn gemm_rows(
        &self,
        ctx: &KernelCtx<'_>,
        layer: &PackedLayer,
        acts: &Matrix,
        row_lo: usize,
        row_hi: usize,
        out: &mut [f64],
    );

    /// Accumulates output rows `[row_lo, row_hi)` of `W · x` for a single
    /// activation column into `out` (zeroed, `row_hi − row_lo` elements).
    /// The default routes through [`MicroKernel::gemm_rows`]; kernels with
    /// a shape-specialized GEMV override it.
    ///
    /// The same `OutputChannel` alignment precondition as
    /// [`MicroKernel::gemm_rows`] applies. Additionally — the
    /// **parallel-GEMV determinism contract** — a restricted row range
    /// must accumulate each output element in exactly the order the full
    /// range would, so that tiles computed on separate threads and
    /// stitched at fixed split points reproduce the serial result bit for
    /// bit.
    fn gemv_rows(
        &self,
        ctx: &KernelCtx<'_>,
        layer: &PackedLayer,
        x: &[f64],
        row_lo: usize,
        row_hi: usize,
        out: &mut [f64],
    ) {
        let acts = Matrix::from_vec(x.len(), 1, x.to_vec());
        self.gemm_rows(ctx, layer, &acts, row_lo, row_hi, out);
    }

    /// Accumulates the full `W · x` product for a single activation
    /// column into `out` (zeroed, `layer.d_row()` elements). Routes
    /// through [`MicroKernel::gemv_rows`] at the full row range.
    fn gemv(&self, ctx: &KernelCtx<'_>, layer: &PackedLayer, x: &[f64], out: &mut [f64]) {
        self.gemv_rows(ctx, layer, x, 0, layer.d_row(), out);
    }
}

/// Decodes one inlier code byte as its two's-complement integer value at
/// bit width `bb` — the shared scalar decode every kernel's remainder
/// loop uses.
#[inline]
pub(crate) fn decode_code(c: u8, bb: u32) -> f32 {
    let shift = 8 - bb;
    ((c << shift) as i8 >> shift) as f32
}

/// Group indices contributing to output rows `[row_lo, row_hi)`, in an
/// order that keeps per-output-element accumulation ascending in `k`.
///
/// * `DotProduct`: rows are lines; every group of lines `row_lo..row_hi`
///   contributes. The walk is k-block-major (macro-block position outer,
///   line inner) so one activation block stays cache-hot across all
///   output rows — the same blocking the dense matmul uses. Per output
///   row the macro-block position still ascends, so per-element
///   accumulation order is unchanged.
/// * `OutputChannel`: rows are `offset` positions; the groups at
///   macro-block positions covering the row range contribute, walked with
///   the line (= reduction index) outermost.
pub fn groups_for_rows(layer: &PackedLayer, row_lo: usize, row_hi: usize) -> Vec<usize> {
    let per_line = layer.groups_per_line();
    match layer.axis() {
        GroupAxis::DotProduct => {
            let mut order = Vec::with_capacity((row_hi - row_lo) * per_line);
            for mab in 0..per_line {
                for line in row_lo..row_hi {
                    order.push(line * per_line + mab);
                }
            }
            order
        }
        GroupAxis::OutputChannel => {
            let mab_lo = row_lo / layer.macro_block();
            let mab_hi = row_hi.div_ceil(layer.macro_block());
            let mut order = Vec::with_capacity((mab_hi - mab_lo) * layer.lines());
            for line in 0..layer.lines() {
                for mab in mab_lo..mab_hi {
                    order.push(line * per_line + mab);
                }
            }
            order
        }
    }
}

/// Walks every group contributing to output rows `[row_lo, row_hi)` in
/// oracle order ([`groups_for_rows`]), decoding each into one reused
/// buffer and handing `f` the span plus the decoded `f64` values — the
/// shared group-decode loop for kernels that consume dense group values
/// (both the scalar GEMM and GEMV run through here).
pub fn for_each_decoded_group(
    layer: &PackedLayer,
    row_lo: usize,
    row_hi: usize,
    mut f: impl FnMut(GroupSpan, &[f64]),
) {
    let mut buf = vec![0.0_f64; layer.macro_block()];
    for g in groups_for_rows(layer, row_lo, row_hi) {
        let view = layer.group(g);
        let span = view.span();
        view.decode_into(&mut buf);
        f(span, &buf[..span.len]);
    }
}

/// Splits `n` output columns into fixed-width chunks (8, then 4/2/1 for
/// the remainder) so lane kernels run on compile-time widths.
pub fn for_col_chunks(n: usize, mut f: impl FnMut(usize, usize)) {
    let mut c0 = 0;
    while n - c0 >= 8 {
        f(c0, 8);
        c0 += 8;
    }
    for w in [4, 2, 1] {
        while n - c0 >= w {
            f(c0, w);
            c0 += w;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::synth::{synth_packed, SynthSpec};
    use super::*;

    #[test]
    fn group_order_covers_every_group_once() {
        for (axis, rows, cols) in [
            (GroupAxis::DotProduct, 24, 48),
            (GroupAxis::OutputChannel, 32, 16),
        ] {
            let layer = synth_packed(&SynthSpec {
                axis,
                d_row: rows,
                d_col: cols,
                bits: 2,
                outlier_rate: 0.1,
                seed: 7,
                ..SynthSpec::default()
            });
            let mut order = groups_for_rows(&layer, 0, layer.d_row());
            order.sort_unstable();
            let expect: Vec<usize> = (0..layer.num_groups()).collect();
            assert_eq!(order, expect, "{axis:?}");
        }
    }

    #[test]
    fn decoded_group_walk_matches_direct_decode() {
        let layer = synth_packed(&SynthSpec {
            axis: GroupAxis::DotProduct,
            d_row: 8,
            d_col: 40,
            bits: 4,
            outlier_rate: 0.3,
            seed: 3,
            ..SynthSpec::default()
        });
        let mut walked = 0usize;
        for_each_decoded_group(&layer, 0, layer.d_row(), |span, w| {
            assert_eq!(w.len(), span.len);
            let mut direct = vec![0.0; layer.macro_block()];
            // Spans identify the group uniquely; re-derive its index.
            let per_line = layer.groups_per_line();
            let g = span.line * per_line + span.offset / layer.macro_block();
            layer.decode_group_into(g, &mut direct);
            assert_eq!(w, &direct[..span.len]);
            walked += 1;
        });
        assert_eq!(walked, layer.num_groups());
    }

    #[test]
    fn tolerance_semantics() {
        assert!(Tolerance::Bitwise.accepts(1.5, 1.5));
        assert!(!Tolerance::Bitwise.accepts(1.5 + f64::EPSILON, 1.5));
        assert!(Tolerance::Abs(1e-9).accepts(1.0 + 1e-10, 1.0));
        assert!(!Tolerance::Abs(1e-9).accepts(1.0 + 1e-8, 1.0));
        // Rel scales with the oracle magnitude and keeps a floor at 0.
        assert!(Tolerance::Rel(1e-3).accepts(100.05, 100.0));
        assert!(!Tolerance::Rel(1e-3).accepts(100.2, 100.0));
        assert!(Tolerance::Rel(1e-3).accepts(5e-4, 0.0));
    }

    #[test]
    fn col_chunks_tile_exactly() {
        for n in [1usize, 2, 3, 7, 8, 9, 15, 16, 31] {
            let mut covered = vec![false; n];
            for_col_chunks(n, |c0, w| {
                assert!([8, 4, 2, 1].contains(&w));
                for (c, slot) in covered.iter_mut().enumerate().skip(c0).take(w) {
                    assert!(!*slot, "column {c} chunked twice (n={n})");
                    *slot = true;
                }
            });
            assert!(covered.iter().all(|&c| c), "n={n} not fully covered");
        }
    }
}
