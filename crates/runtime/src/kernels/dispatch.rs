//! Kernel selection: a [`KernelRegistry`] of [`MicroKernel`]s plus the
//! [`KernelPolicy`] that picks one per GEMM/GEMV call from the call's
//! [`DispatchKey`] (activation columns, bit width, outlier density,
//! group size) and [`KernelCtx`] (cache availability).
//!
//! # Policy table
//!
//! | policy | selection |
//! |---|---|
//! | [`KernelPolicy::Default`] | [`BucketedCacheKernel`] when the engine has a decoded cache, [`ScalarKernel`] otherwise — byte-for-byte the pre-dispatch engine behavior |
//! | [`KernelPolicy::Scalar`] | always the scalar oracle (bitwise, ignores the cache) |
//! | [`KernelPolicy::Fast`] | first registered kernel whose `supports` accepts the call, in registry priority order; scalar as the universal fallback |
//! | [`KernelPolicy::Named`] | that kernel if registered **and** it supports the call; scalar otherwise |
//!
//! With the default registration order — bucketed-cache, explicit SIMD
//! (when runtime feature detection passes), bucketed-lane, lane-blocked
//! `f32`, scalar — `Fast` resolves to: bucketed tiles when a cache is
//! available; the `simd-f32` kernel for uncached calls on supported
//! shapes (group ≤ 256 slots, outlier density ≤ 0.5); on hosts without
//! AVX2+FMA/NEON (or with `MICROSCOPIQ_SIMD=off`), the `bucketed-lane`
//! kernel for the 2-bit m = 1 GEMV decode shape and the lane-blocked
//! `f32` kernel otherwise; and the scalar oracle for everything else
//! (e.g. outlier-heavy layers, oversized groups).
//!
//! # Registering a kernel
//!
//! ```
//! use microscopiq_runtime::kernels::{
//!     KernelPolicy, KernelRegistry, LaneKernel,
//! };
//! use microscopiq_runtime::{EngineConfig, RuntimeEngine};
//! use std::sync::Arc;
//!
//! let mut registry = KernelRegistry::with_defaults();
//! registry.register(Arc::new(LaneKernel)); // or your own MicroKernel
//! let engine = RuntimeEngine::with_registry(
//!     EngineConfig {
//!         policy: KernelPolicy::Named("lane-f32"),
//!         ..EngineConfig::default()
//!     },
//!     registry,
//! );
//! assert!(engine.kernel_names().contains(&"lane-f32"));
//! ```

use super::bucketed::{BucketedCacheKernel, BUCKETED_KERNEL};
use super::bucketed_lane::BucketedLaneKernel;
use super::lane::LaneKernel;
use super::scalar::ScalarKernel;
use super::simd::SimdKernel;
use super::{DispatchKey, KernelCtx, MicroKernel};
use crate::telemetry::metrics::{Counter, Sample, SampleValue};
use std::sync::{Arc, RwLock};

/// How the engine picks a kernel per call. `Default` reproduces the
/// pre-dispatch engine exactly; anything else is an explicit opt-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelPolicy {
    /// Bucketed decoded-cache execution when the engine has a cache,
    /// scalar oracle otherwise (bitwise uncached).
    #[default]
    Default,
    /// Always the scalar `f64` oracle — bitwise everywhere, never touches
    /// the decoded cache even when one is configured.
    Scalar,
    /// Fastest supporting kernel in registry priority order.
    Fast,
    /// A specific kernel by registry name, with scalar fallback when it
    /// is missing or does not support the call shape.
    Named(&'static str),
}

/// The shape a dispatched call executed as, for invocation accounting:
/// the batched row-tile path or the single-column GEMV fast path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelOp {
    /// Multi-column (or row-tiled parallel) execution.
    Gemm,
    /// Single-column serial fast path.
    Gemv,
}

impl KernelOp {
    fn index(self) -> usize {
        match self {
            KernelOp::Gemm => 0,
            KernelOp::Gemv => 1,
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            KernelOp::Gemm => "gemm",
            KernelOp::Gemv => "gemv",
        }
    }
}

/// Bit widths tracked per kernel (the packed format supports 2 and 4).
const TRACKED_BITS: [u32; 2] = [2, 4];

fn bits_index(bits: u32) -> usize {
    if bits == 2 {
        0
    } else {
        1
    }
}

/// Invocation counters for one registered kernel: calls keyed by
/// (execution shape, bit width) plus total packed-group traversal
/// volume (the decode-work proxy).
#[derive(Debug, Default)]
struct KernelSlot {
    name: &'static str,
    /// `calls[op][bits_index]`.
    calls: [[Counter; 2]; 2],
    groups: Counter,
}

/// Per-kernel dispatch counters for one registry. Recording takes an
/// uncontended read lock plus relaxed atomic adds; the write lock is
/// only taken the first time a kernel name appears. Registry clones
/// share these counters (an engine built from a cloned registry reports
/// into the same series).
#[derive(Debug, Default)]
pub struct KernelMetrics {
    slots: RwLock<Vec<KernelSlot>>,
}

impl KernelMetrics {
    /// Records one dispatched call.
    pub fn record(&self, name: &'static str, op: KernelOp, bits: u32, groups: u64) {
        {
            let slots = self.slots.read().expect("kernel metrics poisoned");
            if let Some(s) = slots.iter().find(|s| s.name == name) {
                s.calls[op.index()][bits_index(bits)].inc();
                s.groups.add(groups);
                return;
            }
        }
        let mut slots = self.slots.write().expect("kernel metrics poisoned");
        let pos = slots
            .iter()
            .position(|s| s.name == name)
            .unwrap_or_else(|| {
                slots.push(KernelSlot {
                    name,
                    ..KernelSlot::default()
                });
                slots.len() - 1
            });
        slots[pos].calls[op.index()][bits_index(bits)].inc();
        slots[pos].groups.add(groups);
    }

    /// Total calls recorded for `name`, summed over shapes and widths.
    pub fn calls_for(&self, name: &str) -> u64 {
        let slots = self.slots.read().expect("kernel metrics poisoned");
        slots
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.calls.iter().flatten().map(Counter::get).sum::<u64>())
            .sum()
    }

    /// Counter samples for the `kernel_calls` family: one series per
    /// occupied (kernel, op, bits) combination.
    pub fn call_samples(&self) -> Vec<Sample> {
        let slots = self.slots.read().expect("kernel metrics poisoned");
        let mut out = Vec::new();
        for s in slots.iter() {
            for op in [KernelOp::Gemm, KernelOp::Gemv] {
                for (bi, &bits) in TRACKED_BITS.iter().enumerate() {
                    let n = s.calls[op.index()][bi].get();
                    if n > 0 {
                        out.push(Sample {
                            labels: vec![
                                ("kernel", s.name.to_string()),
                                ("op", op.as_str().to_string()),
                                ("bits", bits.to_string()),
                            ],
                            value: SampleValue::Counter(n),
                        });
                    }
                }
            }
        }
        out
    }

    /// Counter samples for the `decoded_groups` family: packed groups
    /// traversed, one series per kernel.
    pub fn group_samples(&self) -> Vec<Sample> {
        let slots = self.slots.read().expect("kernel metrics poisoned");
        slots
            .iter()
            .filter(|s| s.groups.get() > 0)
            .map(|s| Sample {
                labels: vec![("kernel", s.name.to_string())],
                value: SampleValue::Counter(s.groups.get()),
            })
            .collect()
    }
}

/// An ordered set of kernels. Priority is insertion order — `Fast` picks
/// the first kernel whose `supports` accepts the call — and
/// [`KernelRegistry::register`] inserts at the *front*, so the newest
/// registration wins ties. The scalar oracle is always present as the
/// final fallback.
#[derive(Debug, Clone)]
pub struct KernelRegistry {
    kernels: Vec<Arc<dyn MicroKernel>>,
    scalar: Arc<dyn MicroKernel>,
    metrics: Arc<KernelMetrics>,
}

impl Default for KernelRegistry {
    fn default() -> Self {
        Self::with_defaults()
    }
}

impl KernelRegistry {
    /// The standard registry: bucketed-cache, then the explicit SIMD
    /// kernel (iff runtime feature detection passes and
    /// `MICROSCOPIQ_SIMD` does not force-disable it), then bucketed-lane,
    /// then lane-blocked `f32`, then the scalar oracle.
    pub fn with_defaults() -> Self {
        Self::assemble(SimdKernel::try_new())
    }

    /// The standard registry with the SIMD kernel unconditionally left
    /// out — what `with_defaults` builds on a host without AVX2/NEON.
    /// The graceful-fallback tests pin that this registry dispatches
    /// bitwise-stably.
    pub fn without_simd() -> Self {
        Self::assemble(None)
    }

    fn assemble(simd: Option<SimdKernel>) -> Self {
        let mut kernels: Vec<Arc<dyn MicroKernel>> = vec![Arc::new(BucketedCacheKernel)];
        if let Some(s) = simd {
            kernels.push(Arc::new(s));
        }
        kernels.push(Arc::new(BucketedLaneKernel));
        kernels.push(Arc::new(LaneKernel));
        kernels.push(Arc::new(ScalarKernel));
        Self {
            kernels,
            scalar: Arc::new(ScalarKernel),
            metrics: Arc::new(KernelMetrics::default()),
        }
    }

    /// A registry holding only the scalar oracle.
    pub fn scalar_only() -> Self {
        Self {
            kernels: vec![Arc::new(ScalarKernel)],
            scalar: Arc::new(ScalarKernel),
            metrics: Arc::new(KernelMetrics::default()),
        }
    }

    /// The registry's dispatch counters (shared by clones).
    pub fn metrics(&self) -> &Arc<KernelMetrics> {
        &self.metrics
    }

    /// Records one dispatched call against the registry's counters —
    /// called by the engine at its GEMM/GEMV entry points, once per
    /// call (not per tile).
    pub fn record_call(&self, name: &'static str, op: KernelOp, bits: u32, groups: u64) {
        self.metrics.record(name, op, bits, groups);
    }

    /// Registers a kernel at the front of the priority order (the newest
    /// registration is consulted first by [`KernelPolicy::Fast`], and
    /// shadows an existing kernel of the same name for
    /// [`KernelPolicy::Named`]).
    pub fn register(&mut self, kernel: Arc<dyn MicroKernel>) {
        self.kernels.insert(0, kernel);
    }

    /// The registered kernels in priority order.
    pub fn kernels(&self) -> &[Arc<dyn MicroKernel>] {
        &self.kernels
    }

    /// Registered kernel names in priority order (deduplicated in favor
    /// of the highest-priority entry).
    pub fn names(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = Vec::new();
        for k in &self.kernels {
            if !names.contains(&k.name()) {
                names.push(k.name());
            }
        }
        names
    }

    /// Looks a kernel up by name (highest-priority match).
    pub fn get(&self, name: &str) -> Option<&dyn MicroKernel> {
        self.kernels
            .iter()
            .find(|k| k.name() == name)
            .map(|k| k.as_ref())
    }

    /// Selects the kernel for one call per the policy table (see module
    /// docs). Always returns *some* kernel — the scalar oracle backs
    /// every policy.
    pub fn select(
        &self,
        policy: KernelPolicy,
        key: &DispatchKey,
        ctx: &KernelCtx<'_>,
    ) -> &dyn MicroKernel {
        match policy {
            KernelPolicy::Scalar => self.scalar.as_ref(),
            KernelPolicy::Default => {
                if ctx.cache.is_some() {
                    self.get(BUCKETED_KERNEL).unwrap_or(self.scalar.as_ref())
                } else {
                    self.scalar.as_ref()
                }
            }
            KernelPolicy::Fast => self
                .kernels
                .iter()
                .find(|k| k.supports(key, ctx))
                .map(|k| k.as_ref())
                .unwrap_or(self.scalar.as_ref()),
            KernelPolicy::Named(name) => self
                .get(name)
                .filter(|k| k.supports(key, ctx))
                .unwrap_or(self.scalar.as_ref()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::lane::{LANE_KERNEL, MAX_GROUP};
    use super::super::scalar::SCALAR_KERNEL;
    use super::*;
    use crate::cache::DecodedCache;

    fn key(m: usize, group: usize, frac: f64) -> DispatchKey {
        DispatchKey {
            m,
            bits: 2,
            outlier_frac: frac,
            group,
        }
    }

    #[test]
    fn default_policy_mirrors_cache_availability() {
        let reg = KernelRegistry::with_defaults();
        let cache = DecodedCache::new(1 << 16);
        let k = key(8, 64, 0.03);
        assert_eq!(
            reg.select(KernelPolicy::Default, &k, &KernelCtx::uncached())
                .name(),
            SCALAR_KERNEL
        );
        assert_eq!(
            reg.select(KernelPolicy::Default, &k, &KernelCtx::cached(&cache, 1))
                .name(),
            BUCKETED_KERNEL
        );
    }

    #[test]
    fn scalar_policy_ignores_cache() {
        let reg = KernelRegistry::with_defaults();
        let cache = DecodedCache::new(1 << 16);
        assert_eq!(
            reg.select(
                KernelPolicy::Scalar,
                &key(1, 64, 0.0),
                &KernelCtx::cached(&cache, 1)
            )
            .name(),
            SCALAR_KERNEL
        );
    }

    #[test]
    fn fast_policy_prefers_lane_uncached_and_respects_supports() {
        let reg = KernelRegistry::with_defaults();
        let ctx = KernelCtx::uncached();
        // At m = 8 bucketed-lane declines, so the pick is simd-f32 when
        // detection passed on this host, lane-f32 otherwise.
        let expected = if SimdKernel::try_new().is_some() {
            super::super::simd::SIMD_KERNEL
        } else {
            LANE_KERNEL
        };
        assert_eq!(
            reg.select(KernelPolicy::Fast, &key(8, 64, 0.03), &ctx)
                .name(),
            expected
        );
        // Without the SIMD kernel the same call resolves to lane-f32 —
        // the graceful-fallback priority order.
        assert_eq!(
            KernelRegistry::without_simd()
                .select(KernelPolicy::Fast, &key(8, 64, 0.03), &ctx)
                .name(),
            LANE_KERNEL
        );
        // Oversized group and outlier-heavy layers fall back to scalar.
        assert_eq!(
            reg.select(KernelPolicy::Fast, &key(8, MAX_GROUP * 2, 0.03), &ctx)
                .name(),
            SCALAR_KERNEL
        );
        assert_eq!(
            reg.select(KernelPolicy::Fast, &key(8, 64, 0.9), &ctx)
                .name(),
            SCALAR_KERNEL
        );
        // With a cache, the bucketed kernel outranks lane.
        let cache = DecodedCache::new(1 << 16);
        assert_eq!(
            reg.select(
                KernelPolicy::Fast,
                &key(8, 64, 0.03),
                &KernelCtx::cached(&cache, 1)
            )
            .name(),
            BUCKETED_KERNEL
        );
    }

    #[test]
    fn named_policy_falls_back_to_scalar_when_unsupported() {
        let reg = KernelRegistry::with_defaults();
        let ctx = KernelCtx::uncached();
        assert_eq!(
            reg.select(KernelPolicy::Named(LANE_KERNEL), &key(8, 64, 0.0), &ctx)
                .name(),
            LANE_KERNEL
        );
        assert_eq!(
            reg.select(
                KernelPolicy::Named("no-such-kernel"),
                &key(8, 64, 0.0),
                &ctx
            )
            .name(),
            SCALAR_KERNEL
        );
        // Bucketed without a cache is unsupported → scalar.
        assert_eq!(
            reg.select(KernelPolicy::Named(BUCKETED_KERNEL), &key(8, 64, 0.0), &ctx)
                .name(),
            SCALAR_KERNEL
        );
    }

    #[test]
    fn registration_prepends_and_shadows() {
        let mut reg = KernelRegistry::scalar_only();
        assert_eq!(reg.names(), vec![SCALAR_KERNEL]);
        reg.register(Arc::new(LaneKernel));
        assert_eq!(reg.names(), vec![LANE_KERNEL, SCALAR_KERNEL]);
        assert_eq!(
            reg.select(KernelPolicy::Fast, &key(8, 64, 0.0), &KernelCtx::uncached())
                .name(),
            LANE_KERNEL
        );
    }
}
