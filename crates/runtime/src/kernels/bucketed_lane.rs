//! The bucketed-lane kernel: the paper's **multiply-free code bucketing**
//! (§5 — a `bb`-bit code has at most `2^bb` distinct values, so the PE
//! replaces multiplies with per-code accumulation) fused with the lane
//! kernel's structure, and *without* the decoded-tile cache — so it
//! composes with the cache-less `Fast` serving tier.
//!
//! Per micro-block on the GEMV decode path (`DotProduct` axis), the
//! activations sort themselves into per-code buckets — one add per slot,
//! no multiply — and the group finishes with a single `2^bb`-entry dot
//! against the decoded code table. At `bb = 2` that is 4 buckets (and
//! code 0 never even needs its bucket read); the multiply count per group
//! drops from `group_len` to `2^bb − 1`.
//!
//! Shape-specialized for `m = 1`: `supports` advertises only the 2-bit
//! GEMV regime (where bucketing wins), but the kernel stays correct for
//! every shape — GEMM calls delegate to the lane kernel's blocked loop,
//! and the bucketing itself generalizes over `bb` through the code table.
//!
//! Numerics: bucket sums accumulate in `f32` (a *different* association
//! than the oracle's slot-order walk), outliers fix up in exact `f64`;
//! pinned at the same [`Tolerance::Rel`] class as the lane kernel.

use super::lane::MAX_OUTLIER_FRAC;
use super::{
    decode_code, groups_for_rows, DispatchKey, KernelCtx, LaneKernel, MicroKernel, Tolerance,
    MAX_GROUP,
};
use microscopiq_core::config::GroupAxis;
use microscopiq_core::packed::PackedLayer;
use microscopiq_linalg::Matrix;

/// Registry name of the bucketed-lane kernel.
pub const BUCKETED_LANE_KERNEL: &str = "bucketed-lane";

/// Largest code table the bucket array holds (`bb ≤ 4`).
const MAX_CODES: usize = 16;

/// The bucketed-lane kernel. Stateless; never touches the decoded cache.
#[derive(Debug, Clone, Copy, Default)]
pub struct BucketedLaneKernel;

impl MicroKernel for BucketedLaneKernel {
    fn name(&self) -> &'static str {
        BUCKETED_LANE_KERNEL
    }

    fn tolerance(&self) -> Tolerance {
        // f32 bucket accumulation, exact f64 outliers — the lane class.
        Tolerance::Rel(1e-3)
    }

    fn supports(&self, key: &DispatchKey, _ctx: &KernelCtx<'_>) -> bool {
        // Bucketing pays off where multiplies dominate adds: the m = 1
        // decode GEMV at bb = 2. Elsewhere the lane kernel's FMA loop is
        // the better advice (the kernel itself stays correct everywhere).
        key.m == 1
            && key.bits == 2
            && key.group <= MAX_GROUP
            && key.outlier_frac <= MAX_OUTLIER_FRAC
    }

    fn wants_f32_acts(&self) -> bool {
        true
    }

    /// GEMM shapes delegate to the lane kernel's blocked loop (bucketing
    /// has no column reuse to exploit), so direct invocation on any shape
    /// — the conformance sweep does this — still meets the pin.
    fn gemm_rows(
        &self,
        ctx: &KernelCtx<'_>,
        layer: &PackedLayer,
        acts: &Matrix,
        row_lo: usize,
        row_hi: usize,
        out: &mut [f64],
    ) {
        LaneKernel.gemm_rows(ctx, layer, acts, row_lo, row_hi, out);
    }

    fn gemv_rows(
        &self,
        ctx: &KernelCtx<'_>,
        layer: &PackedLayer,
        x: &[f64],
        row_lo: usize,
        row_hi: usize,
        out: &mut [f64],
    ) {
        assert!(
            layer.macro_block() <= MAX_GROUP,
            "bucketed-lane kernel group buffers hold at most {MAX_GROUP} slots"
        );
        let bb = layer.inlier_bits();
        let nvals = 1usize << bb;
        assert!(nvals <= MAX_CODES, "inlier bits above the bucket table");
        // The decoded value of every possible code byte, once per call.
        let mut vals = [0.0_f32; MAX_CODES];
        for (c, v) in vals.iter_mut().enumerate().take(nvals) {
            *v = decode_code(c as u8, bb);
        }
        let local32: Vec<f32>;
        let x32: &[f32] = match ctx.acts32 {
            Some(shared) => {
                debug_assert_eq!(shared.len(), x.len(), "acts32 shape");
                shared
            }
            None => {
                local32 = x.iter().map(|&v| v as f32).collect();
                &local32
            }
        };
        let mut lane_acc = vec![0.0_f32; row_hi - row_lo];
        let mut mb_buf = [0.0_f32; MAX_GROUP];
        let axis = layer.axis();
        for g in groups_for_rows(layer, row_lo, row_hi) {
            let view = layer.group(g);
            let span = view.span();
            let scale = view.isf().value() as f32;
            match axis {
                GroupAxis::DotProduct => {
                    let r = span.line - row_lo;
                    // Buckets: activation sums per code value — adds only.
                    let mut bucket = [0.0_f32; MAX_CODES];
                    let mut tail = 0.0_f32;
                    let mut base = span.offset;
                    for i in 0..view.micro_block_count() {
                        let codes = view.micro_block_codes(i);
                        if view.micro_block_has_outliers(i) {
                            // Outlier-bearing blocks fall back to the
                            // multiply path: exact f64 outliers plus an
                            // f32 dot over the zero-patched inliers.
                            let buf = &mut mb_buf[..codes.len()];
                            view.decode_micro_block_codes_f32(i, buf, |slot, v| {
                                out[r] += v * x[base + slot];
                            });
                            for (k, &w) in buf.iter().enumerate() {
                                tail += w * x32[base + k];
                            }
                        } else {
                            for (k, &c) in codes.iter().enumerate() {
                                bucket[c as usize] += x32[base + k];
                            }
                        }
                        base += codes.len();
                    }
                    // One dot with the code table finishes the group;
                    // code 0 contributes nothing by construction.
                    let mut dot = tail;
                    for c in 1..nvals {
                        dot += vals[c] * bucket[c];
                    }
                    lane_acc[r] += scale * dot;
                }
                GroupAxis::OutputChannel => {
                    // One reduction element fans out to group_len output
                    // rows: the "bucket dot" precomputes m × table once
                    // and every slot becomes a single add.
                    let row0 = span.offset - row_lo;
                    let m = scale * x32[span.line];
                    let mut vals_m = [0.0_f32; MAX_CODES];
                    for c in 0..nvals {
                        vals_m[c] = m * vals[c];
                    }
                    let mut base = 0usize;
                    for i in 0..view.micro_block_count() {
                        let codes = view.micro_block_codes(i);
                        if view.micro_block_has_outliers(i) {
                            let buf = &mut mb_buf[..codes.len()];
                            view.decode_micro_block_codes_f32(i, buf, |slot, v| {
                                out[row0 + base + slot] += v * x[span.line];
                            });
                            if m != 0.0 {
                                for (k, &w) in buf.iter().enumerate() {
                                    lane_acc[row0 + base + k] += m * w;
                                }
                            }
                        } else if m != 0.0 {
                            for (k, &c) in codes.iter().enumerate() {
                                lane_acc[row0 + base + k] += vals_m[c as usize];
                            }
                        }
                        base += codes.len();
                    }
                }
            }
        }
        for (o, &l) in out.iter_mut().zip(lane_acc.iter()) {
            *o += l as f64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::synth::{synth_packed, SynthSpec};
    use super::super::{fused_gemv_serial, SCALAR_KERNEL};
    use super::*;

    use microscopiq_linalg::SeededRng;

    #[test]
    fn bucketed_lane_gemv_matches_oracle_within_pin() {
        for axis in [GroupAxis::DotProduct, GroupAxis::OutputChannel] {
            for bits in [2u32, 4] {
                for rate in [0.0, 0.1, 0.9] {
                    let layer = synth_packed(&SynthSpec {
                        axis,
                        d_row: 48,
                        d_col: 64,
                        bits,
                        outlier_rate: rate,
                        seed: 19,
                        ..SynthSpec::default()
                    });
                    let mut rng = SeededRng::new(12);
                    let x: Vec<f64> = (0..64).map(|_| rng.normal(0.0, 1.0)).collect();
                    let oracle = fused_gemv_serial(&layer, &x);
                    let mut got = vec![0.0_f64; 48];
                    BucketedLaneKernel.gemv(&KernelCtx::uncached(), &layer, &x, &mut got);
                    let tol = BucketedLaneKernel.tolerance();
                    for (i, (&a, &b)) in got.iter().zip(oracle.iter()).enumerate() {
                        assert!(
                            tol.accepts(a, b),
                            "{axis:?} bits={bits} rate={rate} elem {i}: {a} vs {b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn dispatch_advice_is_the_two_bit_gemv_regime() {
        let k = BucketedLaneKernel;
        let ctx = KernelCtx::uncached();
        let key = |m, bits, group, frac| DispatchKey {
            m,
            bits,
            outlier_frac: frac,
            group,
        };
        assert!(k.supports(&key(1, 2, 64, 0.03), &ctx));
        assert!(!k.supports(&key(8, 2, 64, 0.03), &ctx), "GEMM shape");
        assert!(!k.supports(&key(1, 4, 64, 0.03), &ctx), "4-bit");
        assert!(!k.supports(&key(1, 2, MAX_GROUP * 2, 0.03), &ctx));
        assert!(!k.supports(&key(1, 2, 64, 0.9), &ctx), "outlier-heavy");
        // Sanity: the name the fallback tests pin really is this kernel.
        assert_ne!(BUCKETED_LANE_KERNEL, SCALAR_KERNEL);
    }
}
