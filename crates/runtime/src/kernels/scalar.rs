//! The scalar `f64` reference kernel — the conformance **oracle** every
//! other kernel is measured against.
//!
//! It computes `W · X` directly from a [`PackedLayer`], walking
//! macro-blocks in layout order, decoding each group (Isf inlier scale,
//! MXScale outlier exponent, Upper/Lower half reassembly through the
//! permutation list) into one reused buffer, and accumulating scaled
//! activation rows into the output — the dense weight matrix is never
//! materialized.
//!
//! Accumulation order is chosen to be *bit-identical* to
//! `layer.dequantize().matmul(x)`: for every output element,
//! contributions arrive in ascending reduction index `k`, which is also
//! the order the dense blocked matmul uses. Skipped zero weights add
//! exactly nothing, so this kernel and the dense reference agree to the
//! last ulp — which is why its pinned tolerance is [`Tolerance::Bitwise`].

use super::{for_each_decoded_group, DispatchKey, KernelCtx, MicroKernel, Tolerance};
use microscopiq_core::config::GroupAxis;
use microscopiq_core::packed::{GroupSpan, PackedLayer};
use microscopiq_linalg::Matrix;

/// Registry name of the scalar oracle kernel.
pub const SCALAR_KERNEL: &str = "scalar-f64";

/// Accumulates one decoded macro-block span into the output.
///
/// * `w` — decoded weights for the span (`span.len` values);
/// * `acts` — activations, `d_col × n`;
/// * `out` — output buffer rows `[row_base, row_base + out_rows)` of the
///   full `d_row × n` result, stored row-major in `out`.
///
/// For [`GroupAxis::DotProduct`] the span lives on output row
/// `span.line`; for [`GroupAxis::OutputChannel`] it covers output rows
/// `span.offset..span.offset + span.len` at reduction index `span.line`.
/// Spans outside `[row_base, row_base + out_rows)` are the caller's bug.
pub(crate) fn accumulate_span(
    axis: GroupAxis,
    span: &GroupSpan,
    w: &[f64],
    acts: &Matrix,
    out: &mut [f64],
    row_base: usize,
    n: usize,
) {
    match axis {
        GroupAxis::DotProduct => {
            let r = span.line - row_base;
            let orow = &mut out[r * n..(r + 1) * n];
            for (i, &wv) in w.iter().enumerate() {
                if wv == 0.0 {
                    continue;
                }
                let arow = acts.row(span.offset + i);
                for (o, a) in orow.iter_mut().zip(arow.iter()) {
                    *o += wv * a;
                }
            }
        }
        GroupAxis::OutputChannel => {
            let arow = acts.row(span.line);
            for (i, &wv) in w.iter().enumerate() {
                if wv == 0.0 {
                    continue;
                }
                let r = span.offset + i - row_base;
                let orow = &mut out[r * n..(r + 1) * n];
                for (o, a) in orow.iter_mut().zip(arow.iter()) {
                    *o += wv * a;
                }
            }
        }
    }
}

/// The scalar `f64` oracle kernel. Stateless; ignores the execution
/// context (it never touches the decoded cache).
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarKernel;

impl MicroKernel for ScalarKernel {
    fn name(&self) -> &'static str {
        SCALAR_KERNEL
    }

    fn tolerance(&self) -> Tolerance {
        Tolerance::Bitwise
    }

    fn supports(&self, _key: &DispatchKey, _ctx: &KernelCtx<'_>) -> bool {
        true // the universal fallback: every shape, every regime
    }

    fn gemm_rows(
        &self,
        _ctx: &KernelCtx<'_>,
        layer: &PackedLayer,
        acts: &Matrix,
        row_lo: usize,
        row_hi: usize,
        out: &mut [f64],
    ) {
        let n = acts.cols();
        let axis = layer.axis();
        for_each_decoded_group(layer, row_lo, row_hi, |span, w| {
            accumulate_span(axis, &span, w, acts, out, row_lo, n);
        });
    }

    fn gemv_rows(
        &self,
        _ctx: &KernelCtx<'_>,
        layer: &PackedLayer,
        x: &[f64],
        row_lo: usize,
        row_hi: usize,
        out: &mut [f64],
    ) {
        let axis = layer.axis();
        for_each_decoded_group(layer, row_lo, row_hi, |span, w| match axis {
            GroupAxis::DotProduct => {
                let acc = &mut out[span.line - row_lo];
                for (i, &wv) in w.iter().enumerate() {
                    if wv != 0.0 {
                        *acc += wv * x[span.offset + i];
                    }
                }
            }
            GroupAxis::OutputChannel => {
                let a = x[span.line];
                for (i, &wv) in w.iter().enumerate() {
                    if wv != 0.0 {
                        out[span.offset + i - row_lo] += wv * a;
                    }
                }
            }
        });
    }
}

/// The scalar fused dequant-GEMM: `W · acts` computed straight from packed
/// blocks on a single thread, with no decoded-block caching. A free-
/// function wrapper over [`ScalarKernel`], kept as the repo-wide oracle
/// entry point.
///
/// # Panics
///
/// Panics if `acts.rows() != layer.d_col()`.
pub fn fused_gemm_serial(layer: &PackedLayer, acts: &Matrix) -> Matrix {
    assert_eq!(
        layer.d_col(),
        acts.rows(),
        "fused gemm dimension mismatch: {}x{} · {}x{}",
        layer.d_row(),
        layer.d_col(),
        acts.rows(),
        acts.cols()
    );
    let mut out = Matrix::zeros(layer.d_row(), acts.cols());
    ScalarKernel.gemm_rows(
        &KernelCtx::uncached(),
        layer,
        acts,
        0,
        layer.d_row(),
        out.as_mut_slice(),
    );
    out
}

/// The scalar fused dequant-GEMV: `W · x` for a single activation column,
/// computed straight from packed blocks with no tile bookkeeping. This is
/// the decode fast path (m = 1): per-step serving batches of one collapse
/// to a GEMV per linear layer, where tile-queue and thread-spawn overhead
/// would dominate the actual multiply-accumulates.
///
/// Bit-identical to [`fused_gemm_serial`] on a one-column activation
/// matrix (same per-element accumulation order).
///
/// # Panics
///
/// Panics if `x.len() != layer.d_col()`.
pub fn fused_gemv_serial(layer: &PackedLayer, x: &[f64]) -> Vec<f64> {
    assert_eq!(
        layer.d_col(),
        x.len(),
        "fused gemv dimension mismatch: {}x{} · {}",
        layer.d_row(),
        layer.d_col(),
        x.len()
    );
    let mut out = vec![0.0_f64; layer.d_row()];
    ScalarKernel.gemv(&KernelCtx::uncached(), layer, x, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use microscopiq_core::config::{GroupAxis, QuantConfig};
    use microscopiq_core::solver::solve;
    use microscopiq_core::traits::LayerTensors;
    use microscopiq_linalg::{Matrix, SeededRng};

    fn packed_layer(
        rows: usize,
        cols: usize,
        axis: GroupAxis,
        bits: u32,
        seed: u64,
    ) -> PackedLayer {
        let mut rng = SeededRng::new(seed);
        let mut w = Matrix::from_fn(rows, cols, |_, _| rng.normal(0.0, 0.02));
        for _ in 0..(rows * cols / 40) {
            let r = rng.below(rows);
            let c = rng.below(cols);
            w[(r, c)] = rng.sign() * rng.uniform_range(0.15, 0.5);
        }
        let x = Matrix::from_fn(cols, 8, |_, _| rng.normal(0.0, 1.0));
        let layer = LayerTensors::new(w, x).unwrap();
        let cfg = QuantConfig::builder(bits)
            .macro_block(16)
            .row_block(16)
            .group_axis(axis)
            .build()
            .unwrap();
        solve(&layer, &cfg).unwrap().packed.unwrap()
    }

    #[test]
    fn fused_matches_dense_bitwise_dot_product() {
        let layer = packed_layer(24, 48, GroupAxis::DotProduct, 2, 1);
        let mut rng = SeededRng::new(2);
        let acts = Matrix::from_fn(48, 7, |_, _| rng.normal(0.0, 1.0));
        let fused = fused_gemm_serial(&layer, &acts);
        let dense = layer.dequantize().matmul(&acts);
        assert_eq!(fused, dense, "fused path must be bit-identical");
    }

    #[test]
    fn fused_matches_dense_bitwise_output_channel() {
        let layer = packed_layer(32, 16, GroupAxis::OutputChannel, 4, 3);
        let mut rng = SeededRng::new(4);
        let acts = Matrix::from_fn(16, 5, |_, _| rng.normal(0.0, 1.0));
        let fused = fused_gemm_serial(&layer, &acts);
        let dense = layer.dequantize().matmul(&acts);
        assert_eq!(fused, dense, "fused path must be bit-identical");
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let layer = packed_layer(16, 32, GroupAxis::DotProduct, 2, 9);
        let acts = Matrix::zeros(16, 4);
        let _ = fused_gemm_serial(&layer, &acts);
    }

    #[test]
    fn gemv_matches_gemm_bitwise_both_axes() {
        for (axis, rows, cols) in [
            (GroupAxis::DotProduct, 24, 48),
            (GroupAxis::OutputChannel, 32, 16),
        ] {
            for bits in [2, 4] {
                let layer = packed_layer(rows, cols, axis, bits, 21);
                let mut rng = SeededRng::new(22);
                let x: Vec<f64> = (0..cols).map(|_| rng.normal(0.0, 1.0)).collect();
                let acts = Matrix::from_vec(cols, 1, x.clone());
                let gemv = fused_gemv_serial(&layer, &x);
                let gemm = fused_gemm_serial(&layer, &acts);
                assert_eq!(gemv, gemm.as_slice().to_vec(), "{axis:?} bits={bits}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "gemv dimension mismatch")]
    fn gemv_dimension_mismatch_panics() {
        let layer = packed_layer(16, 32, GroupAxis::DotProduct, 2, 9);
        let _ = fused_gemv_serial(&layer, &[0.0; 16]);
    }
}
