//! The bucketed decoded-cache kernel: executes from the engine's
//! [`DecodedCache`] tiles so warm passes skip unpacking entirely.
//!
//! 2-bit layers run from [`BucketTile`]s — inliers contribute per bucket
//! as `code·2^Isf × Σ activation-rows` (branch-free adds with one
//! multiply per bucket per column) and outliers as individual exact
//! multiply-adds. 4-bit layers run from [`FlatTile`]s (exact `f32`
//! castbacks walked once at full width, `f64` escapes for values that do
//! not round-trip). Partial bucket sums reassociate relative to the dense
//! reference, so results agree to ~1e-12 — pinned at the runtime's 1e-9
//! contract, not bitwise.
//!
//! This kernel requires a cache in its [`KernelCtx`]; `supports` gates on
//! that, and the dispatch default selects it exactly when the engine has
//! one configured.
//!
//! [`DecodedCache`]: crate::cache::DecodedCache
//! [`BucketTile`]: crate::cache::BucketTile
//! [`FlatTile`]: crate::cache::FlatTile

use super::{for_col_chunks, groups_for_rows, DispatchKey, KernelCtx, MicroKernel, Tolerance};
use crate::cache::{BucketTile, DecodedTile, FlatTile};
use microscopiq_core::config::GroupAxis;
use microscopiq_core::packed::{GroupSpan, PackedLayer};
use microscopiq_linalg::Matrix;
use std::sync::Arc;

/// Registry name of the bucketed decoded-cache kernel.
pub const BUCKETED_KERNEL: &str = "bucketed-cache";

/// Bucketed accumulation of one cached tile into columns
/// `[col0, col0 + N)` of the output rows `[row_base, ..)` buffer.
#[allow(clippy::too_many_arguments)] // internal kernel; args are the GEMM coordinates
fn accumulate_bucketed<const N: usize>(
    axis: GroupAxis,
    span: &GroupSpan,
    tile: &BucketTile,
    acts_flat: &[f64],
    n: usize,
    col0: usize,
    out: &mut [f64],
    row_base: usize,
) {
    let arow_at = |k: usize| -> &[f64; N] {
        acts_flat[k * n + col0..][..N]
            .try_into()
            .expect("chunk width")
    };
    match axis {
        GroupAxis::DotProduct => {
            let r = span.line - row_base;
            let orow: &mut [f64; N] = (&mut out[r * n + col0..][..N])
                .try_into()
                .expect("chunk width");
            for (m, slots) in tile.buckets() {
                // Short buckets (common at bb = 4, where 15 code values
                // split a 64-slot group thinly): direct multiply-adds beat
                // the accumulate-then-combine detour.
                if slots.len() < 4 {
                    for &i in slots {
                        let arow = arow_at(span.offset + i as usize);
                        for j in 0..N {
                            orow[j] += m * arow[j];
                        }
                    }
                    continue;
                }
                let mut acc = [0.0_f64; N];
                for &i in slots {
                    let arow = arow_at(span.offset + i as usize);
                    for j in 0..N {
                        acc[j] += arow[j];
                    }
                }
                for j in 0..N {
                    orow[j] += m * acc[j];
                }
            }
            for &(i, v) in tile.outliers() {
                let arow = arow_at(span.offset + i as usize);
                for j in 0..N {
                    orow[j] += v * arow[j];
                }
            }
        }
        GroupAxis::OutputChannel => {
            let arow = *arow_at(span.line);
            for (m, slots) in tile.buckets() {
                let mut ma = [0.0_f64; N];
                for j in 0..N {
                    ma[j] = m * arow[j];
                }
                for &i in slots {
                    let r = span.offset + i as usize - row_base;
                    let orow: &mut [f64; N] = (&mut out[r * n + col0..][..N])
                        .try_into()
                        .expect("chunk width");
                    for j in 0..N {
                        orow[j] += ma[j];
                    }
                }
            }
            for &(i, v) in tile.outliers() {
                let r = span.offset + i as usize - row_base;
                let orow: &mut [f64; N] = (&mut out[r * n + col0..][..N])
                    .try_into()
                    .expect("chunk width");
                for j in 0..N {
                    orow[j] += v * arow[j];
                }
            }
        }
    }
}

/// Accumulation of one flat `f32` tile at full output width (no column
/// chunking — the group is walked once). Values are exact `f32`
/// castbacks; wide-escaped slots contribute their exact `f64` values.
fn accumulate_flat(
    axis: GroupAxis,
    span: &GroupSpan,
    tile: &FlatTile,
    acts_flat: &[f64],
    out: &mut [f64],
    row_base: usize,
    n: usize,
) {
    let arow_at = |k: usize| -> &[f64] { &acts_flat[k * n..(k + 1) * n] };
    match axis {
        GroupAxis::DotProduct => {
            let r = span.line - row_base;
            let orow = &mut out[r * n..(r + 1) * n];
            for (i, &wv) in tile.values().iter().enumerate() {
                if wv == 0.0 {
                    continue;
                }
                let wv = wv as f64;
                let arow = arow_at(span.offset + i);
                for (o, a) in orow.iter_mut().zip(arow.iter()) {
                    *o += wv * a;
                }
            }
            for &(i, v) in tile.wide() {
                let arow = arow_at(span.offset + i as usize);
                for (o, a) in orow.iter_mut().zip(arow.iter()) {
                    *o += v * a;
                }
            }
        }
        GroupAxis::OutputChannel => {
            let arow = arow_at(span.line);
            for (i, &wv) in tile.values().iter().enumerate() {
                if wv == 0.0 {
                    continue;
                }
                let wv = wv as f64;
                let r = span.offset + i - row_base;
                let orow = &mut out[r * n..(r + 1) * n];
                for (o, a) in orow.iter_mut().zip(arow.iter()) {
                    *o += wv * a;
                }
            }
            for &(i, v) in tile.wide() {
                let r = span.offset + i as usize - row_base;
                let orow = &mut out[r * n..(r + 1) * n];
                for (o, a) in orow.iter_mut().zip(arow.iter()) {
                    *o += v * a;
                }
            }
        }
    }
}

/// The decoded-cache execution kernel. Stateless — the cache arrives per
/// call through the [`KernelCtx`].
#[derive(Debug, Clone, Copy, Default)]
pub struct BucketedCacheKernel;

impl BucketedCacheKernel {
    /// The shared body behind both trait entry points: runs cached tiles
    /// over a flat row-major activation image (`d_col × n`), so the GEMV
    /// path can hand its column slice straight through without staging a
    /// one-column [`Matrix`] copy.
    #[allow(clippy::too_many_arguments)] // internal kernel; args are the GEMM coordinates
    fn run(
        &self,
        ctx: &KernelCtx<'_>,
        layer: &PackedLayer,
        acts_flat: &[f64],
        n: usize,
        row_lo: usize,
        row_hi: usize,
        out: &mut [f64],
    ) {
        let (cache, layer_id) = ctx
            .cache
            .expect("bucketed-cache kernel requires a decoded cache in the context");
        let order = groups_for_rows(layer, row_lo, row_hi);
        let tiles: Vec<Arc<DecodedTile>> = order
            .iter()
            .map(|&g| cache.get_or_decode(layer_id, layer, g))
            .collect();
        let axis = layer.axis();
        if layer.inlier_bits() == 2 {
            // Bucketed tiles: column-chunked so the per-bucket accumulators
            // live in fixed-size registers.
            for_col_chunks(n, |col0, width| {
                for (&g, tile) in order.iter().zip(tiles.iter()) {
                    let DecodedTile::Bucketed(tile) = tile.as_ref() else {
                        unreachable!("2-bit layers decode to bucketed tiles");
                    };
                    let span = layer.group_span(g);
                    match width {
                        8 => accumulate_bucketed::<8>(
                            axis, &span, tile, acts_flat, n, col0, out, row_lo,
                        ),
                        4 => accumulate_bucketed::<4>(
                            axis, &span, tile, acts_flat, n, col0, out, row_lo,
                        ),
                        2 => accumulate_bucketed::<2>(
                            axis, &span, tile, acts_flat, n, col0, out, row_lo,
                        ),
                        _ => accumulate_bucketed::<1>(
                            axis, &span, tile, acts_flat, n, col0, out, row_lo,
                        ),
                    }
                }
            });
        } else {
            // Flat tiles: one full-width walk per group.
            for (&g, tile) in order.iter().zip(tiles.iter()) {
                let DecodedTile::Flat(tile) = tile.as_ref() else {
                    unreachable!("4-bit layers decode to flat tiles");
                };
                let span = layer.group_span(g);
                accumulate_flat(axis, &span, tile, acts_flat, out, row_lo, n);
            }
        }
    }
}

impl MicroKernel for BucketedCacheKernel {
    fn name(&self) -> &'static str {
        BUCKETED_KERNEL
    }

    fn tolerance(&self) -> Tolerance {
        // Reassociated bucket partial sums: ~1e-12 observed, pinned at
        // the runtime's long-standing 1e-9 contract.
        Tolerance::Abs(1e-9)
    }

    fn supports(&self, _key: &DispatchKey, ctx: &KernelCtx<'_>) -> bool {
        ctx.cache.is_some()
    }

    /// # Panics
    ///
    /// Panics if the context carries no decoded cache (`supports` gates
    /// dispatch on it).
    fn gemm_rows(
        &self,
        ctx: &KernelCtx<'_>,
        layer: &PackedLayer,
        acts: &Matrix,
        row_lo: usize,
        row_hi: usize,
        out: &mut [f64],
    ) {
        self.run(
            ctx,
            layer,
            acts.as_slice(),
            acts.cols(),
            row_lo,
            row_hi,
            out,
        );
    }

    /// The m = 1 decode shape without the default's one-column `Matrix`
    /// staging copy: a column vector *is* a flat `d_col × 1` image, so it
    /// feeds the tile accumulators directly. Bit-identical to
    /// `gemm_rows` on the equivalent one-column matrix.
    fn gemv_rows(
        &self,
        ctx: &KernelCtx<'_>,
        layer: &PackedLayer,
        x: &[f64],
        row_lo: usize,
        row_hi: usize,
        out: &mut [f64],
    ) {
        self.run(ctx, layer, x, 1, row_lo, row_hi, out);
    }
}

#[cfg(test)]
mod tests {
    use super::super::fused_gemm_serial;
    use super::super::synth::{synth_packed, SynthSpec};
    use super::*;
    use crate::cache::DecodedCache;
    use microscopiq_linalg::SeededRng;

    #[test]
    fn bucketed_matches_oracle_within_pin_and_reuses_tiles() {
        for bits in [2u32, 4] {
            let layer = synth_packed(&SynthSpec {
                axis: GroupAxis::DotProduct,
                d_row: 32,
                d_col: 64,
                bits,
                outlier_rate: 0.1,
                seed: 17,
                ..SynthSpec::default()
            });
            let mut rng = SeededRng::new(3);
            let acts = Matrix::from_fn(64, 9, |_, _| rng.normal(0.0, 1.0));
            let oracle = fused_gemm_serial(&layer, &acts);
            let cache = DecodedCache::new(1 << 20);
            let ctx = KernelCtx::cached(&cache, layer.content_fingerprint());
            let run = || {
                let mut out = Matrix::zeros(32, 9);
                BucketedCacheKernel.gemm_rows(&ctx, &layer, &acts, 0, 32, out.as_mut_slice());
                out
            };
            let cold = run();
            let tol = BucketedCacheKernel.tolerance();
            for (&a, &b) in cold.as_slice().iter().zip(oracle.as_slice().iter()) {
                assert!(tol.accepts(a, b), "bits={bits}: {a} vs {b}");
            }
            assert_eq!(cold, run(), "warm pass must repeat cold pass exactly");
            assert_eq!(cache.stats().hits, layer.num_groups() as u64);
        }
    }

    #[test]
    fn gemv_override_is_bitwise_identical_to_one_column_gemm() {
        for bits in [2u32, 4] {
            let layer = synth_packed(&SynthSpec {
                axis: GroupAxis::DotProduct,
                d_row: 32,
                d_col: 64,
                bits,
                outlier_rate: 0.2,
                seed: 29,
                ..SynthSpec::default()
            });
            let mut rng = SeededRng::new(30);
            let x: Vec<f64> = (0..64).map(|_| rng.normal(0.0, 1.0)).collect();
            let cache = DecodedCache::new(1 << 20);
            let ctx = KernelCtx::cached(&cache, layer.content_fingerprint());
            let mut via_gemv = vec![0.0_f64; 32];
            BucketedCacheKernel.gemv(&ctx, &layer, &x, &mut via_gemv);
            let acts = Matrix::from_vec(64, 1, x.clone());
            let mut via_gemm = vec![0.0_f64; 32];
            BucketedCacheKernel.gemm_rows(&ctx, &layer, &acts, 0, 32, &mut via_gemm);
            assert_eq!(via_gemv, via_gemm, "bits={bits}");
        }
    }

    #[test]
    #[should_panic(expected = "requires a decoded cache")]
    fn missing_cache_panics() {
        let layer = synth_packed(&SynthSpec::default());
        let acts = Matrix::zeros(layer.d_col(), 2);
        let mut out = vec![0.0; layer.d_row() * 2];
        BucketedCacheKernel.gemm_rows(
            &KernelCtx::uncached(),
            &layer,
            &acts,
            0,
            layer.d_row(),
            &mut out,
        );
    }
}
