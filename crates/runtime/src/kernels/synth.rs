//! Direct packed-layer synthesis for kernel tests and benches: builds a
//! [`PackedLayer`] straight in packed form (random inlier codes, shared
//! scales over a realistic range, outlier-bearing micro-blocks at a
//! controlled rate) so kernel measurements and conformance sweeps exercise
//! the runtime, not the quantizer — and can produce shapes the solver
//! path would make awkward (odd reduction lengths, outlier-heavy
//! regimes, both grouping axes, both bit budgets).

use microscopiq_core::config::GroupAxis;
use microscopiq_core::microblock::{PermEntry, PermutationList};
use microscopiq_core::packed::{MicroBlockMeta, PackedLayer, PackedMacroBlock, PackedMicroBlock};
use microscopiq_linalg::SeededRng;
use microscopiq_mx::fp::TinyFloat;
use microscopiq_mx::mxfp::MxScale;
use microscopiq_mx::scale::Pow2Scale;

/// What to synthesize. `..SynthSpec::default()` fills unexercised knobs.
#[derive(Debug, Clone, Copy)]
pub struct SynthSpec {
    /// Grouping axis.
    pub axis: GroupAxis,
    /// Output-channel count.
    pub d_row: usize,
    /// Input-feature count (need not divide the macro-block — tail
    /// groups come out partial, as real odd shapes do).
    pub d_col: usize,
    /// Inlier bit budget (2 or 4).
    pub bits: u32,
    /// Micro-block size `Bμ` (power of two).
    pub micro: usize,
    /// Macro-block size `BM` (multiple of `micro`).
    pub macro_block: usize,
    /// Probability that a full micro-block carries one outlier pair
    /// (partial tail blocks never do — permutation entries must address
    /// real slots).
    pub outlier_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SynthSpec {
    fn default() -> Self {
        Self {
            axis: GroupAxis::DotProduct,
            d_row: 32,
            d_col: 64,
            bits: 2,
            micro: 8,
            macro_block: 64,
            outlier_rate: 0.03,
            seed: 7,
        }
    }
}

/// Synthesizes a packed layer per the spec.
///
/// # Panics
///
/// Panics (inside [`PackedLayer::new`]) if the spec's block geometry is
/// invalid.
pub fn synth_packed(spec: &SynthSpec) -> PackedLayer {
    let mut rng = SeededRng::new(spec.seed);
    let (lines, line_len) = match spec.axis {
        GroupAxis::DotProduct => (spec.d_row, spec.d_col),
        GroupAxis::OutputChannel => (spec.d_col, spec.d_row),
    };
    let fmt = TinyFloat::for_outlier_bits(spec.bits * 2);
    let per_line = line_len.div_ceil(spec.macro_block);
    let mut groups = Vec::with_capacity(lines * per_line);
    for _ in 0..lines {
        for mab in 0..per_line {
            let len = (line_len - mab * spec.macro_block).min(spec.macro_block);
            let mut micro_blocks = Vec::with_capacity(len.div_ceil(spec.micro));
            let mut remaining = len;
            while remaining > 0 {
                let n = remaining.min(spec.micro);
                let codes: Vec<u8> = (0..n)
                    .map(|_| rng.below(1usize << spec.bits) as u8)
                    .collect();
                let meta = (n == spec.micro && rng.chance(spec.outlier_rate)).then(|| {
                    let upper = rng.below(spec.micro) as u8;
                    let lower = (upper as usize + 1 + rng.below(spec.micro - 1)) % spec.micro;
                    MicroBlockMeta {
                        mxscale: MxScale::new(rng.below(4) as i32 - 2, rng.below(2) as u32, fmt),
                        perm: PermutationList::new(
                            vec![PermEntry {
                                upper_loc: upper,
                                lower_loc: lower as u8,
                            }],
                            spec.micro,
                        ),
                    }
                });
                micro_blocks.push(PackedMicroBlock { codes, meta });
                remaining -= n;
            }
            groups.push(PackedMacroBlock {
                isf: Pow2Scale::new(-(rng.below(4) as i32) - 4),
                micro_blocks,
            });
        }
    }
    PackedLayer::new(
        spec.axis,
        spec.d_row,
        spec.d_col,
        spec.bits,
        spec.micro,
        spec.macro_block,
        groups,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synth_respects_spec_and_roundtrips() {
        for axis in [GroupAxis::DotProduct, GroupAxis::OutputChannel] {
            for bits in [2u32, 4] {
                let layer = synth_packed(&SynthSpec {
                    axis,
                    d_row: 24,
                    d_col: 52, // odd: tail group of 4 (macro 16)
                    bits,
                    micro: 8,
                    macro_block: 16,
                    outlier_rate: 0.25,
                    seed: 42,
                });
                assert_eq!(layer.axis(), axis);
                assert_eq!((layer.d_row(), layer.d_col()), (24, 52));
                assert_eq!(layer.inlier_bits(), bits);
                assert!(layer.outlier_micro_block_fraction() > 0.0);
                let back = PackedLayer::from_bytes(&layer.to_bytes()).unwrap();
                assert_eq!(back.dequantize(), layer.dequantize());
            }
        }
    }

    #[test]
    fn outlier_rate_zero_means_no_metadata() {
        let layer = synth_packed(&SynthSpec {
            outlier_rate: 0.0,
            ..SynthSpec::default()
        });
        assert_eq!(layer.outlier_micro_block_fraction(), 0.0);
    }
}
