//! The parallel tiled executor: a [`RuntimeEngine`] that runs the fused
//! dequant-GEMM over row-block tiles on a std-thread pool with
//! work-stealing tile claims, backed by the [`DecodedCache`] so repeated
//! passes amortize unpacking. Falls back to the scalar kernel for small
//! problems or single-thread configurations.
//!
//! Tiling is over *output rows*: each tile owns a disjoint row range, so
//! workers never write the same output element. Tile claims come from one
//! shared atomic counter — an idle worker steals the next unclaimed tile
//! regardless of which worker "should" have taken it, which balances load
//! when outlier-heavy blocks make some tiles slower than others.
//!
//! Numerics: the uncached path accumulates in the dense reference's
//! reduction order and is bit-identical to `dequantize().matmul(..)` for
//! any thread count or tile size. The cached path executes from bucketed
//! tiles (see [`crate::cache`]), whose per-bucket partial sums reassociate
//! the reduction — results agree with the dense reference to ~1e-12
//! absolute, far inside the runtime's 1e-9 contract.

use crate::cache::{CacheStats, DecodedCache, DecodedTile};
use crate::kernel::{
    accumulate_bucketed, accumulate_flat, accumulate_span, for_col_chunks, fused_gemm_serial,
    fused_gemv_serial, groups_for_rows,
};
use microscopiq_core::packed::PackedLayer;
use microscopiq_fm::PackedGemm;
use microscopiq_linalg::Matrix;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Worker threads; 0 means all available cores.
    pub threads: usize,
    /// Decoded-tile cache residency cap in bytes; 0 disables caching.
    pub cache_bytes: usize,
    /// Output rows per tile; 0 picks a size from the thread count.
    pub tile_rows: usize,
    /// Problems below this many multiply-accumulates run without
    /// spawning worker threads (spawn cost would dominate).
    pub parallel_threshold: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            cache_bytes: 64 << 20,
            tile_rows: 0,
            parallel_threshold: 1 << 16,
        }
    }
}

impl EngineConfig {
    /// Scalar configuration: one thread, no cache — the bit-exact
    /// reference fused path.
    pub fn scalar() -> Self {
        Self {
            threads: 1,
            cache_bytes: 0,
            tile_rows: 0,
            parallel_threshold: usize::MAX,
        }
    }
}

/// A packed-weight GEMM engine: fused dequant kernel + decoded-block
/// cache + parallel tiled execution. Implements [`PackedGemm`], so it
/// plugs straight into [`microscopiq_fm::PackedTinyFm`].
#[derive(Debug)]
pub struct RuntimeEngine {
    cfg: EngineConfig,
    threads: usize,
    cache: Option<DecodedCache>,
}

impl RuntimeEngine {
    /// Creates an engine from a configuration.
    pub fn new(cfg: EngineConfig) -> Self {
        let threads = if cfg.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            cfg.threads
        };
        let cache = (cfg.cache_bytes > 0).then(|| DecodedCache::new(cfg.cache_bytes));
        Self {
            cfg,
            threads,
            cache,
        }
    }

    /// The default engine: all cores, 64 MiB decoded-tile cache.
    pub fn parallel() -> Self {
        Self::new(EngineConfig::default())
    }

    /// The scalar fallback engine (single thread, no cache, bit-exact).
    pub fn scalar() -> Self {
        Self::new(EngineConfig::scalar())
    }

    /// Worker threads this engine uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Decoded-cache statistics, when caching is enabled.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// Computes `W · acts` from the packed layer.
    ///
    /// # Panics
    ///
    /// Panics if `acts.rows() != layer.d_col()`.
    pub fn gemm(&self, layer: &PackedLayer, acts: &Matrix) -> Matrix {
        assert_eq!(
            layer.d_col(),
            acts.rows(),
            "fused gemm dimension mismatch: {}x{} · {}x{}",
            layer.d_row(),
            layer.d_col(),
            acts.rows(),
            acts.cols()
        );
        let layer_id = self.cache.as_ref().map(|_| layer.content_fingerprint());
        let work = layer.d_row() * layer.d_col() * acts.cols();
        if self.threads <= 1 || work < self.cfg.parallel_threshold {
            return match (&self.cache, layer_id) {
                (Some(cache), Some(id)) => {
                    self.gemm_rows_cached(cache, id, layer, acts, 0, layer.d_row())
                }
                // Decode fast path: one activation column (m = 1) is a
                // GEMV — run it with the vector kernel (no tile
                // bookkeeping, no Matrix output staging). Large m = 1
                // problems still honor `parallel_threshold` above, so
                // decode on a big layer can use the row-tiled workers.
                _ if acts.cols() == 1 => {
                    Matrix::from_vec(layer.d_row(), 1, fused_gemv_serial(layer, acts.as_slice()))
                }
                _ => fused_gemm_serial(layer, acts),
            };
        }
        self.gemm_parallel(layer, layer_id, acts)
    }

    /// Cached fused GEMM over output rows `[row_lo, row_hi)`, returning
    /// the tile as a `(row_hi − row_lo) × n` matrix.
    fn gemm_rows_cached(
        &self,
        cache: &DecodedCache,
        layer_id: u64,
        layer: &PackedLayer,
        acts: &Matrix,
        row_lo: usize,
        row_hi: usize,
    ) -> Matrix {
        let n = acts.cols();
        let mut out = Matrix::zeros(row_hi - row_lo, n);
        let order = groups_for_rows(layer, row_lo, row_hi);
        let tiles: Vec<Arc<DecodedTile>> = order
            .iter()
            .map(|&g| cache.get_or_decode(layer_id, layer, g))
            .collect();
        let acts_flat = acts.as_slice();
        let axis = layer.axis();
        let out_flat = out.as_mut_slice();
        if layer.inlier_bits() == 2 {
            // Bucketed tiles: column-chunked so the per-bucket accumulators
            // live in fixed-size registers.
            for_col_chunks(n, |col0, width| {
                for (&g, tile) in order.iter().zip(tiles.iter()) {
                    let DecodedTile::Bucketed(tile) = tile.as_ref() else {
                        unreachable!("2-bit layers decode to bucketed tiles");
                    };
                    let span = layer.group_span(g);
                    match width {
                        8 => accumulate_bucketed::<8>(
                            axis, &span, tile, acts_flat, n, col0, out_flat, row_lo,
                        ),
                        4 => accumulate_bucketed::<4>(
                            axis, &span, tile, acts_flat, n, col0, out_flat, row_lo,
                        ),
                        2 => accumulate_bucketed::<2>(
                            axis, &span, tile, acts_flat, n, col0, out_flat, row_lo,
                        ),
                        _ => accumulate_bucketed::<1>(
                            axis, &span, tile, acts_flat, n, col0, out_flat, row_lo,
                        ),
                    }
                }
            });
        } else {
            // Flat tiles: one full-width walk per group.
            for (&g, tile) in order.iter().zip(tiles.iter()) {
                let DecodedTile::Flat(tile) = tile.as_ref() else {
                    unreachable!("4-bit layers decode to flat tiles");
                };
                let span = layer.group_span(g);
                accumulate_flat(axis, &span, tile, acts, out_flat, row_lo, n);
            }
        }
        out
    }

    /// Uncached fused GEMM over output rows `[row_lo, row_hi)` in the
    /// dense reference's reduction order (bit-exact).
    fn gemm_rows_fresh(
        &self,
        layer: &PackedLayer,
        acts: &Matrix,
        row_lo: usize,
        row_hi: usize,
    ) -> Matrix {
        let n = acts.cols();
        let mut out = Matrix::zeros(row_hi - row_lo, n);
        let mut buf = vec![0.0_f64; layer.macro_block()];
        for g in groups_for_rows(layer, row_lo, row_hi) {
            let span = layer.group_span(g);
            layer.decode_group_into(g, &mut buf);
            accumulate_span(
                layer.axis(),
                &span,
                &buf[..span.len],
                acts,
                out.as_mut_slice(),
                row_lo,
                n,
            );
        }
        out
    }

    /// Tile edges for a `d_row`-row output. Tiles align to macro-block
    /// boundaries on the `OutputChannel` axis so no group straddles tiles.
    fn tile_edges(&self, layer: &PackedLayer) -> Vec<usize> {
        let d_row = layer.d_row();
        let quantum = match layer.axis() {
            microscopiq_core::config::GroupAxis::DotProduct => 1,
            microscopiq_core::config::GroupAxis::OutputChannel => layer.macro_block(),
        };
        let rows = if self.cfg.tile_rows > 0 {
            self.cfg.tile_rows
        } else {
            // ~4 tiles per worker keeps the steal queue busy without
            // making tiles too small to amortize claim overhead.
            (d_row / (self.threads * 4)).max(1)
        };
        let rows = rows.next_multiple_of(quantum);
        let mut edges: Vec<usize> = (0..d_row).step_by(rows).collect();
        edges.push(d_row);
        edges
    }

    /// Parallel tiled execution: workers steal tiles off a shared counter
    /// and each computes its tile into a private buffer; the main thread
    /// stitches tiles into the output (tiles are disjoint row ranges).
    fn gemm_parallel(&self, layer: &PackedLayer, layer_id: Option<u64>, acts: &Matrix) -> Matrix {
        let edges = self.tile_edges(layer);
        let n_tiles = edges.len() - 1;
        let next = AtomicUsize::new(0);
        let n = acts.cols();
        let workers = self.threads.min(n_tiles);
        let mut tiles: Vec<Option<Matrix>> = (0..n_tiles).map(|_| None).collect();

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                let next = &next;
                let edges = &edges;
                handles.push(scope.spawn(move || {
                    let mut done: Vec<(usize, Matrix)> = Vec::new();
                    loop {
                        let t = next.fetch_add(1, Ordering::Relaxed);
                        if t >= n_tiles {
                            break;
                        }
                        let (lo, hi) = (edges[t], edges[t + 1]);
                        let tile = match (&self.cache, layer_id) {
                            (Some(cache), Some(id)) => {
                                self.gemm_rows_cached(cache, id, layer, acts, lo, hi)
                            }
                            _ => self.gemm_rows_fresh(layer, acts, lo, hi),
                        };
                        done.push((t, tile));
                    }
                    done
                }));
            }
            for h in handles {
                for (t, tile) in h.join().expect("worker panicked") {
                    tiles[t] = Some(tile);
                }
            }
        });

        let mut out = Matrix::zeros(layer.d_row(), n);
        for (t, tile) in tiles.into_iter().enumerate() {
            let tile = tile.expect("every tile computed");
            let lo = edges[t];
            for r in 0..tile.rows() {
                out.row_mut(lo + r).copy_from_slice(tile.row(r));
            }
        }
        out
    }
}

impl PackedGemm for RuntimeEngine {
    fn name(&self) -> &str {
        "microscopiq-runtime"
    }

    fn matmul(&self, layer: &PackedLayer, acts: &Matrix) -> Matrix {
        self.gemm(layer, acts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microscopiq_core::config::{GroupAxis, QuantConfig};
    use microscopiq_core::solver::solve;
    use microscopiq_core::traits::LayerTensors;
    use microscopiq_linalg::{Matrix, SeededRng};

    fn packed_layer(rows: usize, cols: usize, axis: GroupAxis, seed: u64) -> PackedLayer {
        let mut rng = SeededRng::new(seed);
        let mut w = Matrix::from_fn(rows, cols, |_, _| rng.normal(0.0, 0.02));
        for _ in 0..(rows * cols / 40) {
            let r = rng.below(rows);
            let c = rng.below(cols);
            w[(r, c)] = rng.sign() * rng.uniform_range(0.15, 0.5);
        }
        let x = Matrix::from_fn(cols, 8, |_, _| rng.normal(0.0, 1.0));
        let layer = LayerTensors::new(w, x).unwrap();
        let cfg = QuantConfig::w2()
            .macro_block(16)
            .row_block(16)
            .group_axis(axis)
            .build()
            .unwrap();
        solve(&layer, &cfg).unwrap().packed.unwrap()
    }

    fn max_abs_diff(a: &Matrix, b: &Matrix) -> f64 {
        a.as_slice()
            .iter()
            .zip(b.as_slice().iter())
            .fold(0.0_f64, |m, (x, y)| m.max((x - y).abs()))
    }

    #[test]
    fn parallel_uncached_matches_dense_bitwise_both_axes() {
        for axis in [GroupAxis::DotProduct, GroupAxis::OutputChannel] {
            let layer = packed_layer(64, 32, axis, 1);
            let mut rng = SeededRng::new(2);
            let acts = Matrix::from_fn(32, 9, |_, _| rng.normal(0.0, 1.0));
            let serial = RuntimeEngine::scalar().gemm(&layer, &acts);
            let parallel = RuntimeEngine::new(EngineConfig {
                threads: 4,
                cache_bytes: 0,
                tile_rows: 16,
                parallel_threshold: 0,
            })
            .gemm(&layer, &acts);
            assert_eq!(serial, parallel, "{axis:?}");
            let dense = layer.dequantize().matmul(&acts);
            assert_eq!(serial, dense, "{axis:?} vs dense");
        }
    }

    #[test]
    fn cached_engine_matches_dense_within_tolerance_both_axes() {
        for axis in [GroupAxis::DotProduct, GroupAxis::OutputChannel] {
            // Batch 9 exercises the 8 + 1 column-chunk split.
            let layer = packed_layer(64, 32, axis, 11);
            let mut rng = SeededRng::new(12);
            let acts = Matrix::from_fn(32, 9, |_, _| rng.normal(0.0, 1.0));
            let dense = layer.dequantize().matmul(&acts);
            let cached = RuntimeEngine::new(EngineConfig {
                threads: 2,
                cache_bytes: 1 << 20,
                tile_rows: 16,
                parallel_threshold: 0,
            });
            let first = cached.gemm(&layer, &acts);
            let second = cached.gemm(&layer, &acts);
            assert!(max_abs_diff(&first, &dense) < 1e-9, "{axis:?}");
            assert_eq!(first, second, "warm pass must repeat cold pass exactly");
        }
    }

    #[test]
    fn cached_engine_hits_on_second_pass() {
        let layer = packed_layer(32, 64, GroupAxis::DotProduct, 3);
        let mut rng = SeededRng::new(4);
        let acts = Matrix::from_fn(64, 4, |_, _| rng.normal(0.0, 1.0));
        let engine = RuntimeEngine::new(EngineConfig {
            threads: 1,
            cache_bytes: 1 << 20,
            tile_rows: 0,
            parallel_threshold: usize::MAX,
        });
        let a = engine.gemm(&layer, &acts);
        let stats1 = engine.cache_stats().unwrap();
        let b = engine.gemm(&layer, &acts);
        let stats2 = engine.cache_stats().unwrap();
        assert_eq!(a, b);
        assert_eq!(stats1.hits, 0);
        assert_eq!(
            stats2.hits,
            layer.num_groups() as u64,
            "second pass must hit every tile"
        );
        assert_eq!(stats2.misses, stats1.misses);
    }

    #[test]
    fn tiny_problems_skip_thread_spawn() {
        let layer = packed_layer(16, 16, GroupAxis::DotProduct, 5);
        let mut rng = SeededRng::new(6);
        let acts = Matrix::from_fn(16, 2, |_, _| rng.normal(0.0, 1.0));
        let engine = RuntimeEngine::new(EngineConfig {
            threads: 8,
            cache_bytes: 0,
            tile_rows: 0,
            parallel_threshold: usize::MAX,
        });
        assert_eq!(engine.gemm(&layer, &acts), layer.dequantize().matmul(&acts));
    }

    #[test]
    fn odd_tile_sizes_cover_all_rows() {
        for tile_rows in [1, 3, 7, 64, 1000] {
            let layer = packed_layer(48, 32, GroupAxis::OutputChannel, 7);
            let mut rng = SeededRng::new(8);
            let acts = Matrix::from_fn(32, 3, |_, _| rng.normal(0.0, 1.0));
            let engine = RuntimeEngine::new(EngineConfig {
                threads: 3,
                cache_bytes: 0,
                tile_rows,
                parallel_threshold: 0,
            });
            assert_eq!(
                engine.gemm(&layer, &acts),
                layer.dequantize().matmul(&acts),
                "tile_rows={tile_rows}"
            );
        }
    }

    #[test]
    fn single_column_fast_path_matches_dense() {
        // m = 1 below the parallel threshold takes the serial GEMV route
        // (bit-exact uncached, 1e-9 through the bucketed cache); above
        // the threshold it still honors the row-tiled parallel config.
        for axis in [GroupAxis::DotProduct, GroupAxis::OutputChannel] {
            let layer = packed_layer(64, 32, axis, 13);
            let mut rng = SeededRng::new(14);
            let acts = Matrix::from_fn(32, 1, |_, _| rng.normal(0.0, 1.0));
            let dense = layer.dequantize().matmul(&acts);
            let gemv_route = RuntimeEngine::new(EngineConfig {
                threads: 4,
                cache_bytes: 0,
                tile_rows: 8,
                parallel_threshold: usize::MAX,
            });
            assert_eq!(gemv_route.gemm(&layer, &acts), dense, "{axis:?} gemv");
            let parallel_route = RuntimeEngine::new(EngineConfig {
                threads: 4,
                cache_bytes: 0,
                tile_rows: 8,
                parallel_threshold: 0,
            });
            assert_eq!(
                parallel_route.gemm(&layer, &acts),
                dense,
                "{axis:?} parallel m=1"
            );
            let cached = RuntimeEngine::new(EngineConfig {
                threads: 4,
                cache_bytes: 1 << 20,
                tile_rows: 8,
                parallel_threshold: usize::MAX,
            });
            assert!(
                max_abs_diff(&cached.gemm(&layer, &acts), &dense) < 1e-9,
                "{axis:?} cached"
            );
        }
    }

    #[test]
    fn every_column_chunk_width_is_exercised() {
        // n = 15 → chunks 8, 4, 2, 1.
        let layer = packed_layer(32, 32, GroupAxis::DotProduct, 9);
        let mut rng = SeededRng::new(10);
        let acts = Matrix::from_fn(32, 15, |_, _| rng.normal(0.0, 1.0));
        let dense = layer.dequantize().matmul(&acts);
        let engine = RuntimeEngine::new(EngineConfig {
            threads: 1,
            cache_bytes: 1 << 20,
            tile_rows: 0,
            parallel_threshold: usize::MAX,
        });
        assert!(max_abs_diff(&engine.gemm(&layer, &acts), &dense) < 1e-9);
    }
}
