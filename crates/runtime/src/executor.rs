//! The parallel tiled executor: a [`RuntimeEngine`] that runs the fused
//! dequant-GEMM over row-block tiles on a std-thread pool with
//! work-stealing tile claims, executing every tile through the kernel the
//! [`KernelRegistry`] dispatches for the call (see [`crate::kernels`]).
//!
//! Tiling is over *output rows*: each tile owns a disjoint row range, so
//! workers never write the same output element. Tile claims come from one
//! shared atomic counter — an idle worker steals the next unclaimed tile
//! regardless of which worker "should" have taken it, which balances load
//! when outlier-heavy blocks make some tiles slower than others.
//!
//! Numerics are the dispatched kernel's pinned tolerance: under the
//! default policy the uncached path runs the scalar oracle (bit-identical
//! to `dequantize().matmul(..)` for any thread count or tile size) and
//! the cached path runs the bucketed kernel (within the runtime's 1e-9
//! contract, ~1e-12 observed); opting into [`KernelPolicy::Fast`] adds
//! the lane-blocked `f32` kernel at its own pinned relative tolerance.

use crate::cache::{CacheStats, DecodedCache};
use crate::kernels::{DispatchKey, KernelCtx, KernelOp, KernelPolicy, KernelRegistry, MicroKernel};
use crate::telemetry::{
    collector_fn, EngineTelemetry, MetricKind, MetricsRegistry, Sample, SampleValue,
};
use microscopiq_core::packed::PackedLayer;
use microscopiq_fm::PackedGemm;
use microscopiq_linalg::Matrix;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Worker threads; 0 means all available cores.
    pub threads: usize,
    /// Decoded-tile cache residency cap in bytes; 0 disables caching.
    pub cache_bytes: usize,
    /// Output rows per tile; 0 picks a size from the thread count.
    pub tile_rows: usize,
    /// Problems below this many multiply-accumulates run without
    /// spawning worker threads (spawn cost would dominate).
    pub parallel_threshold: usize,
    /// How the engine picks a kernel per call (see
    /// [`crate::kernels::dispatch`] for the policy table). The default
    /// reproduces the pre-dispatch engine bit for bit.
    pub policy: KernelPolicy,
    /// Warm the decoded-tile cache for the *next* layer from a background
    /// worker while the current layer's GEMM runs ([`PackedGemm::prefetch`]
    /// hints arrive from the model's forward pass). Requires
    /// `cache_bytes > 0` to have any effect. Observational only: prefetch
    /// populates the same cache the bucketed kernel would fill on demand,
    /// so results are unchanged with it on or off.
    pub prefetch: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            cache_bytes: 64 << 20,
            tile_rows: 0,
            parallel_threshold: 1 << 16,
            policy: KernelPolicy::Default,
            prefetch: false,
        }
    }
}

impl EngineConfig {
    /// The scalar configuration — **the** single source of truth for what
    /// "the scalar engine" means ([`RuntimeEngine::scalar`] is exactly
    /// `RuntimeEngine::new(EngineConfig::scalar())`).
    ///
    /// Knobs the scalar engine honors: none beyond what this constructor
    /// pins. `policy: Scalar` forces the bit-exact oracle kernel on every
    /// call, `threads: 1` disables tiling entirely (so `tile_rows` is
    /// never read), `cache_bytes: 0` disables the decoded cache (the
    /// oracle would ignore it anyway), and `parallel_threshold` is moot
    /// once `threads == 1` (kept at `usize::MAX` for belt-and-braces).
    pub fn scalar() -> Self {
        Self {
            threads: 1,
            cache_bytes: 0,
            tile_rows: 0,
            parallel_threshold: usize::MAX,
            policy: KernelPolicy::Scalar,
            prefetch: false,
        }
    }
}

/// Counters for the next-layer prefetch worker: hints accepted into the
/// bounded queue, layers fully decoded into the cache, and hints dropped
/// because the queue was full (best-effort — a dropped hint only means
/// the bucketed kernel decodes on demand as it always did).
#[derive(Debug, Default)]
pub struct PrefetchStats {
    issued: crate::telemetry::metrics::Counter,
    completed: crate::telemetry::metrics::Counter,
    dropped: crate::telemetry::metrics::Counter,
}

impl PrefetchStats {
    /// Hints accepted into the prefetch queue.
    pub fn issued(&self) -> u64 {
        self.issued.get()
    }

    /// Layers whose groups were all decoded into the cache.
    pub fn completed(&self) -> u64 {
        self.completed.get()
    }

    /// Hints dropped because the queue was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }
}

/// The next-layer prefetch worker: one background thread draining a
/// small bounded queue of layer hints, decoding every group of each
/// hinted layer into the shared [`DecodedCache`]. Hints are best-effort
/// (`try_send`); the queue stays shallow so a burst of hints cannot
/// build up a backlog of stale decode work.
#[derive(Debug)]
struct Prefetcher {
    tx: Option<std::sync::mpsc::SyncSender<Arc<PackedLayer>>>,
    worker: Option<std::thread::JoinHandle<()>>,
    stats: Arc<PrefetchStats>,
}

impl Prefetcher {
    fn spawn(cache: Arc<DecodedCache>) -> Self {
        let (tx, rx) = std::sync::mpsc::sync_channel::<Arc<PackedLayer>>(2);
        let stats = Arc::new(PrefetchStats::default());
        let worker_stats = stats.clone();
        let worker = std::thread::Builder::new()
            .name("microscopiq-prefetch".into())
            .spawn(move || {
                while let Ok(layer) = rx.recv() {
                    let id = layer.content_fingerprint();
                    for g in 0..layer.num_groups() {
                        cache.get_or_decode(id, &layer, g);
                    }
                    worker_stats.completed.inc();
                }
            })
            .expect("spawn prefetch worker");
        Self {
            tx: Some(tx),
            worker: Some(worker),
            stats,
        }
    }

    fn hint(&self, layer: &Arc<PackedLayer>) {
        let Some(tx) = &self.tx else { return };
        match tx.try_send(layer.clone()) {
            Ok(()) => self.stats.issued.inc(),
            Err(_) => self.stats.dropped.inc(),
        }
    }
}

impl Drop for Prefetcher {
    fn drop(&mut self) {
        // Closing the channel ends the worker's recv loop; join so no
        // decode outlives the engine (the cache Arc would keep memory
        // alive, but a detached thread could not be reasoned about in
        // tests).
        drop(self.tx.take());
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// A packed-weight GEMM engine: kernel dispatch + decoded-block cache +
/// parallel tiled execution. Implements [`PackedGemm`], so it plugs
/// straight into [`microscopiq_fm::PackedTinyFm`].
#[derive(Debug)]
pub struct RuntimeEngine {
    cfg: EngineConfig,
    threads: usize,
    // Arc'd so telemetry collectors can observe cache statistics after
    // the engine moves onto a worker thread.
    cache: Option<Arc<DecodedCache>>,
    registry: KernelRegistry,
    prefetcher: Option<Prefetcher>,
}

impl RuntimeEngine {
    /// Creates an engine from a configuration with the default kernel
    /// registry.
    pub fn new(cfg: EngineConfig) -> Self {
        Self::with_registry(cfg, KernelRegistry::with_defaults())
    }

    /// Creates an engine dispatching over a caller-assembled registry
    /// (see [`crate::kernels::dispatch`] for how to register a kernel).
    pub fn with_registry(cfg: EngineConfig, registry: KernelRegistry) -> Self {
        let threads = if cfg.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            cfg.threads
        };
        let cache = (cfg.cache_bytes > 0).then(|| Arc::new(DecodedCache::new(cfg.cache_bytes)));
        // Prefetch only makes sense with a cache to warm.
        let prefetcher = match (&cache, cfg.prefetch) {
            (Some(cache), true) => Some(Prefetcher::spawn(cache.clone())),
            _ => None,
        };
        Self {
            cfg,
            threads,
            cache,
            registry,
            prefetcher,
        }
    }

    /// The default engine: all cores, 64 MiB decoded-tile cache, default
    /// dispatch policy.
    pub fn parallel() -> Self {
        Self::new(EngineConfig::default())
    }

    /// The fast serving tier: [`KernelPolicy::Fast`] with the decoded
    /// cache disabled, so dispatch resolves to the lane-blocked `f32`
    /// kernel on every supported call — including the m = 1 GEMV shape
    /// that dominates per-step decode (~6× over the scalar oracle on
    /// 512×2048) — with the scalar oracle as fallback for outlier-heavy
    /// layers or oversized groups. (With a cache, `Fast` would resolve
    /// to the near-exact bucketed kernel, i.e. the default tier.)
    /// Results are within the lane kernel's pinned relative tolerance of
    /// the bit-exact default — the f32-tolerant serving conformance tier
    /// (`tests/fast_serving.rs`) bounds per-token logit deltas and pins
    /// argmax-token parity, which is what qualifies this engine for
    /// [`crate::Server::spawn`]. Unlike the bit-exact tiers, this
    /// engine's per-column results depend on batch composition (the lane
    /// GEMV entry rounds differently from a one-column slice of its
    /// GEMM), so serving determinism holds at the tolerance/argmax level,
    /// not bit for bit.
    pub fn fast() -> Self {
        Self::new(EngineConfig {
            policy: KernelPolicy::Fast,
            cache_bytes: 0,
            ..EngineConfig::default()
        })
    }

    /// The scalar fallback engine (single thread, no cache, scalar-oracle
    /// policy, bit-exact) — `Self::new(EngineConfig::scalar())`.
    pub fn scalar() -> Self {
        Self::new(EngineConfig::scalar())
    }

    /// The configuration the engine was built from.
    pub fn config(&self) -> EngineConfig {
        self.cfg
    }

    /// Worker threads this engine uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Decoded-cache statistics, when caching is enabled.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// Prefetch-worker counters, when next-layer prefetch is enabled
    /// (`prefetch: true` and a decoded cache configured).
    pub fn prefetch_stats(&self) -> Option<&PrefetchStats> {
        self.prefetcher.as_ref().map(|p| p.stats.as_ref())
    }

    /// The kernel registry this engine dispatches over.
    pub fn registry(&self) -> &KernelRegistry {
        &self.registry
    }

    /// Registered kernel names in dispatch priority order.
    pub fn kernel_names(&self) -> Vec<&'static str> {
        self.registry.names()
    }

    /// The kernel the engine would dispatch for an `m`-column call on
    /// this layer (introspection for benches and tests).
    pub fn kernel_for(&self, layer: &PackedLayer, m: usize) -> &'static str {
        let key = DispatchKey::for_call(layer, m);
        let ctx = self.ctx(layer);
        self.registry.select(self.cfg.policy, &key, &ctx).name()
    }

    /// The execution context for a layer: the decoded cache keyed by the
    /// layer's (memoized) content fingerprint, when caching is enabled.
    fn ctx(&self, layer: &PackedLayer) -> KernelCtx<'_> {
        match &self.cache {
            Some(cache) => KernelCtx::cached(cache.as_ref(), layer.content_fingerprint()),
            None => KernelCtx::uncached(),
        }
    }

    /// Computes `W · acts` from the packed layer through the dispatched
    /// kernel.
    ///
    /// # Panics
    ///
    /// Panics if `acts.rows() != layer.d_col()`.
    pub fn gemm(&self, layer: &PackedLayer, acts: &Matrix) -> Matrix {
        assert_eq!(
            layer.d_col(),
            acts.rows(),
            "fused gemm dimension mismatch: {}x{} · {}x{}",
            layer.d_row(),
            layer.d_col(),
            acts.rows(),
            acts.cols()
        );
        let n = acts.cols();
        let key = DispatchKey::for_call(layer, n);
        let ctx = self.ctx(layer);
        let kernel = self.registry.select(self.cfg.policy, &key, &ctx);
        let work = layer.d_row() * layer.d_col() * n;
        let serial = self.threads <= 1 || work < self.cfg.parallel_threshold;
        // One dispatch record per call (never per tile), keyed by the
        // shape the call executes as.
        let op = if serial && n == 1 {
            KernelOp::Gemv
        } else {
            KernelOp::Gemm
        };
        self.registry
            .record_call(kernel.name(), op, key.bits, layer.num_groups() as u64);
        if serial {
            // Decode fast path: one activation column (m = 1) runs the
            // kernel's GEMV entry (no tile bookkeeping, no Matrix output
            // staging). Large m = 1 problems still honor
            // `parallel_threshold` above, so decode on a big layer can
            // use the row-tiled workers.
            if n == 1 {
                let mut out = vec![0.0_f64; layer.d_row()];
                kernel.gemv(&ctx, layer, acts.as_slice(), &mut out);
                return Matrix::from_vec(layer.d_row(), 1, out);
            }
            let mut out = Matrix::zeros(layer.d_row(), n);
            kernel.gemm_rows(&ctx, layer, acts, 0, layer.d_row(), out.as_mut_slice());
            return out;
        }
        self.gemm_parallel(kernel, &ctx, layer, acts)
    }

    /// Computes `W · x` for a single activation column through the
    /// dispatched GEMV kernel — the decode fast path `PackedGemm::gemv`
    /// routes into. Problems above `parallel_threshold` split the
    /// reduction over the work-stealing pool ([`Self::gemv_parallel`]):
    /// single-stream decode no longer pins one core. Tile edges depend
    /// only on the layer shape and engine config, and tiles stitch in
    /// index order, so the parallel result is bitwise identical to the
    /// serial one for every kernel, run to run.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != layer.d_col()`.
    pub fn gemv(&self, layer: &PackedLayer, x: &[f64]) -> Vec<f64> {
        assert_eq!(
            layer.d_col(),
            x.len(),
            "fused gemv dimension mismatch: {}x{} · {}",
            layer.d_row(),
            layer.d_col(),
            x.len()
        );
        let key = DispatchKey::for_call(layer, 1);
        let ctx = self.ctx(layer);
        let kernel = self.registry.select(self.cfg.policy, &key, &ctx);
        self.registry.record_call(
            kernel.name(),
            KernelOp::Gemv,
            key.bits,
            layer.num_groups() as u64,
        );
        let work = layer.d_row() * layer.d_col();
        let mut out = vec![0.0_f64; layer.d_row()];
        if self.threads > 1 && work >= self.cfg.parallel_threshold {
            self.gemv_parallel(kernel, &ctx, layer, x, &mut out);
        } else {
            kernel.gemv(&ctx, layer, x, &mut out);
        }
        out
    }

    /// Tile edges for a `d_row`-row output. Tiles align to macro-block
    /// boundaries on the `OutputChannel` axis so no group straddles tiles.
    fn tile_edges(&self, layer: &PackedLayer) -> Vec<usize> {
        let d_row = layer.d_row();
        let quantum = match layer.axis() {
            microscopiq_core::config::GroupAxis::DotProduct => 1,
            microscopiq_core::config::GroupAxis::OutputChannel => layer.macro_block(),
        };
        let rows = if self.cfg.tile_rows > 0 {
            self.cfg.tile_rows
        } else {
            // ~4 tiles per worker keeps the steal queue busy without
            // making tiles too small to amortize claim overhead.
            (d_row / (self.threads * 4)).max(1)
        };
        let rows = rows.next_multiple_of(quantum);
        let mut edges: Vec<usize> = (0..d_row).step_by(rows).collect();
        edges.push(d_row);
        edges
    }

    /// Parallel tiled execution: workers steal tiles off a shared counter
    /// and each runs the dispatched kernel into a private buffer; the
    /// main thread stitches tiles into the output (tiles are disjoint row
    /// ranges).
    fn gemm_parallel(
        &self,
        kernel: &dyn MicroKernel,
        ctx: &KernelCtx<'_>,
        layer: &PackedLayer,
        acts: &Matrix,
    ) -> Matrix {
        // Convert the activations to f32 once per GEMM for kernels that
        // consume an f32 image — every tile shares it instead of paying
        // one conversion per tile.
        let acts32: Option<Vec<f32>> = kernel
            .wants_f32_acts()
            .then(|| acts.as_slice().iter().map(|&v| v as f32).collect());
        let ctx = match &acts32 {
            Some(a) => ctx.with_acts32(a),
            None => *ctx,
        };
        let ctx = &ctx;
        let edges = self.tile_edges(layer);
        let n_tiles = edges.len() - 1;
        let next = AtomicUsize::new(0);
        let n = acts.cols();
        let workers = self.threads.min(n_tiles);
        let mut tiles: Vec<Option<Vec<f64>>> = (0..n_tiles).map(|_| None).collect();

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                let next = &next;
                let edges = &edges;
                handles.push(scope.spawn(move || {
                    let mut done: Vec<(usize, Vec<f64>)> = Vec::new();
                    loop {
                        let t = next.fetch_add(1, Ordering::Relaxed);
                        if t >= n_tiles {
                            break;
                        }
                        let (lo, hi) = (edges[t], edges[t + 1]);
                        let mut tile = vec![0.0_f64; (hi - lo) * n];
                        kernel.gemm_rows(ctx, layer, acts, lo, hi, &mut tile);
                        done.push((t, tile));
                    }
                    done
                }));
            }
            for h in handles {
                for (t, tile) in h.join().expect("worker panicked") {
                    tiles[t] = Some(tile);
                }
            }
        });

        let mut out = Matrix::zeros(layer.d_row(), n);
        for (t, tile) in tiles.into_iter().enumerate() {
            let tile = tile.expect("every tile computed");
            let (lo, hi) = (edges[t], edges[t + 1]);
            out.as_mut_slice()[lo * n..hi * n].copy_from_slice(&tile);
        }
        out
    }

    /// Parallel GEMV: the reduction splits over the same row tiles as
    /// [`Self::gemm_parallel`], each worker running the kernel's
    /// `gemv_rows` into a private partial buffer.
    ///
    /// **Determinism:** tile edges are a pure function of the layer shape
    /// and engine config ([`Self::tile_edges`]), tiles own disjoint output
    /// ranges, every kernel's restricted-range `gemv_rows` accumulates
    /// each element in full-range order (the trait contract), and the
    /// stitch happens in tile-index order regardless of which worker
    /// finished first — so the result is bitwise identical to the serial
    /// `gemv` and reproducible run to run.
    fn gemv_parallel(
        &self,
        kernel: &dyn MicroKernel,
        ctx: &KernelCtx<'_>,
        layer: &PackedLayer,
        x: &[f64],
        out: &mut [f64],
    ) {
        let x32: Option<Vec<f32>> = kernel
            .wants_f32_acts()
            .then(|| x.iter().map(|&v| v as f32).collect());
        let ctx = match &x32 {
            Some(a) => ctx.with_acts32(a),
            None => *ctx,
        };
        let ctx = &ctx;
        let edges = self.tile_edges(layer);
        let n_tiles = edges.len() - 1;
        let next = AtomicUsize::new(0);
        let workers = self.threads.min(n_tiles);
        let mut tiles: Vec<Option<Vec<f64>>> = (0..n_tiles).map(|_| None).collect();

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                let next = &next;
                let edges = &edges;
                handles.push(scope.spawn(move || {
                    let mut done: Vec<(usize, Vec<f64>)> = Vec::new();
                    loop {
                        let t = next.fetch_add(1, Ordering::Relaxed);
                        if t >= n_tiles {
                            break;
                        }
                        let (lo, hi) = (edges[t], edges[t + 1]);
                        let mut tile = vec![0.0_f64; hi - lo];
                        kernel.gemv_rows(ctx, layer, x, lo, hi, &mut tile);
                        done.push((t, tile));
                    }
                    done
                }));
            }
            for h in handles {
                for (t, tile) in h.join().expect("worker panicked") {
                    tiles[t] = Some(tile);
                }
            }
        });

        for (t, tile) in tiles.into_iter().enumerate() {
            let tile = tile.expect("every tile computed");
            out[edges[t]..edges[t + 1]].copy_from_slice(&tile);
        }
    }
}

impl PackedGemm for RuntimeEngine {
    fn name(&self) -> &str {
        "microscopiq-runtime"
    }

    fn matmul(&self, layer: &PackedLayer, acts: &Matrix) -> Matrix {
        self.gemm(layer, acts)
    }

    fn gemv(&self, layer: &PackedLayer, x: &[f64]) -> Vec<f64> {
        self.gemv(layer, x)
    }

    /// Best-effort hint that `layer` executes soon: when next-layer
    /// prefetch is enabled, the background worker decodes the layer's
    /// groups into the shared cache while the current layer's GEMM runs.
    /// A full queue drops the hint (counted) rather than blocking the
    /// forward pass.
    fn prefetch(&self, layer: &Arc<PackedLayer>) {
        if let Some(p) = &self.prefetcher {
            p.hint(layer);
        }
    }
}

impl EngineTelemetry for RuntimeEngine {
    /// Contributes the engine's dispatch counters and decoded-cache
    /// statistics as dynamic collector families, so one serving
    /// snapshot covers kernels and cache alongside scheduler/server
    /// instruments. Collectors hold `Arc`s to the engine's internals
    /// and read them lazily at snapshot time — nothing is added to the
    /// GEMM/GEMV hot path.
    fn register_telemetry(&self, registry: &MetricsRegistry) {
        let kernel_metrics = self.registry.metrics().clone();
        registry.register_collector(
            "microscopiq_kernel_calls_total",
            "Dispatched kernel invocations by (kernel, op, bits).",
            MetricKind::Counter,
            collector_fn(move || kernel_metrics.call_samples()),
        );
        let kernel_metrics = self.registry.metrics().clone();
        registry.register_collector(
            "microscopiq_kernel_decoded_groups_total",
            "Packed groups traversed by dispatched kernels (decode volume).",
            MetricKind::Counter,
            collector_fn(move || kernel_metrics.group_samples()),
        );
        // Kernel availability on this host: 1/0 per known kernel name, so
        // bench/metric trajectories from hosts with and without SIMD stay
        // comparable at a glance.
        let registered = self.registry.names();
        registry.register_collector(
            "microscopiq_kernel_available",
            "Whether each known kernel is registered on this host (1/0).",
            MetricKind::Gauge,
            collector_fn(move || {
                use crate::kernels::{
                    BUCKETED_KERNEL, BUCKETED_LANE_KERNEL, LANE_KERNEL, SCALAR_KERNEL, SIMD_KERNEL,
                };
                [
                    SCALAR_KERNEL,
                    LANE_KERNEL,
                    BUCKETED_KERNEL,
                    BUCKETED_LANE_KERNEL,
                    SIMD_KERNEL,
                ]
                .into_iter()
                .map(|name| Sample {
                    labels: vec![("kernel", name.to_string())],
                    value: SampleValue::Gauge(i64::from(registered.contains(&name))),
                })
                .collect()
            }),
        );
        registry.register_collector(
            "microscopiq_cpu_feature",
            "Detected CPU features relevant to the SIMD kernel (1/0).",
            MetricKind::Gauge,
            collector_fn(move || {
                crate::kernels::detected_cpu_features()
                    .into_iter()
                    .map(|(feature, present)| Sample {
                        labels: vec![("feature", feature.to_string())],
                        value: SampleValue::Gauge(i64::from(present)),
                    })
                    .collect()
            }),
        );
        let threads = self.threads as i64;
        registry.register_collector(
            "microscopiq_engine_threads",
            "Worker threads the engine tiles GEMM/GEMV calls over.",
            MetricKind::Gauge,
            collector_fn(move || {
                vec![Sample {
                    labels: Vec::new(),
                    value: SampleValue::Gauge(threads),
                }]
            }),
        );
        if let Some(p) = &self.prefetcher {
            let stats = p.stats.clone();
            registry.register_collector(
                "microscopiq_prefetch_events_total",
                "Next-layer prefetch hints by outcome (issued/completed/dropped).",
                MetricKind::Counter,
                collector_fn(move || {
                    [
                        ("issued", stats.issued()),
                        ("completed", stats.completed()),
                        ("dropped", stats.dropped()),
                    ]
                    .into_iter()
                    .map(|(event, n)| Sample {
                        labels: vec![("event", event.to_string())],
                        value: SampleValue::Counter(n),
                    })
                    .collect()
                }),
            );
        }
        if let Some(cache) = &self.cache {
            let c = cache.clone();
            registry.register_collector(
                "microscopiq_cache_events_total",
                "Decoded-block cache lookups by outcome (hit/miss/eviction).",
                MetricKind::Counter,
                collector_fn(move || {
                    let stats = c.stats();
                    [
                        ("hit", stats.hits),
                        ("miss", stats.misses),
                        ("eviction", stats.evictions),
                    ]
                    .into_iter()
                    .map(|(event, n)| Sample {
                        labels: vec![("event", event.to_string())],
                        value: SampleValue::Counter(n),
                    })
                    .collect()
                }),
            );
            let c = cache.clone();
            registry.register_collector(
                "microscopiq_cache_resident_bytes",
                "Decoded-block cache residency in bytes.",
                MetricKind::Gauge,
                collector_fn(move || {
                    vec![Sample {
                        labels: Vec::new(),
                        value: SampleValue::Gauge(c.stats().resident_bytes as i64),
                    }]
                }),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::LANE_KERNEL;
    use microscopiq_core::config::{GroupAxis, QuantConfig};
    use microscopiq_core::solver::solve;
    use microscopiq_core::traits::LayerTensors;
    use microscopiq_linalg::{Matrix, SeededRng};

    fn packed_layer(rows: usize, cols: usize, axis: GroupAxis, seed: u64) -> PackedLayer {
        let mut rng = SeededRng::new(seed);
        let mut w = Matrix::from_fn(rows, cols, |_, _| rng.normal(0.0, 0.02));
        for _ in 0..(rows * cols / 40) {
            let r = rng.below(rows);
            let c = rng.below(cols);
            w[(r, c)] = rng.sign() * rng.uniform_range(0.15, 0.5);
        }
        let x = Matrix::from_fn(cols, 8, |_, _| rng.normal(0.0, 1.0));
        let layer = LayerTensors::new(w, x).unwrap();
        let cfg = QuantConfig::w2()
            .macro_block(16)
            .row_block(16)
            .group_axis(axis)
            .build()
            .unwrap();
        solve(&layer, &cfg).unwrap().packed.unwrap()
    }

    fn max_abs_diff(a: &Matrix, b: &Matrix) -> f64 {
        a.as_slice()
            .iter()
            .zip(b.as_slice().iter())
            .fold(0.0_f64, |m, (x, y)| m.max((x - y).abs()))
    }

    #[test]
    fn parallel_uncached_matches_dense_bitwise_both_axes() {
        for axis in [GroupAxis::DotProduct, GroupAxis::OutputChannel] {
            let layer = packed_layer(64, 32, axis, 1);
            let mut rng = SeededRng::new(2);
            let acts = Matrix::from_fn(32, 9, |_, _| rng.normal(0.0, 1.0));
            let serial = RuntimeEngine::scalar().gemm(&layer, &acts);
            let parallel = RuntimeEngine::new(EngineConfig {
                threads: 4,
                cache_bytes: 0,
                tile_rows: 16,
                parallel_threshold: 0,
                ..EngineConfig::default()
            })
            .gemm(&layer, &acts);
            assert_eq!(serial, parallel, "{axis:?}");
            let dense = layer.dequantize().matmul(&acts);
            assert_eq!(serial, dense, "{axis:?} vs dense");
        }
    }

    #[test]
    fn cached_engine_matches_dense_within_tolerance_both_axes() {
        for axis in [GroupAxis::DotProduct, GroupAxis::OutputChannel] {
            // Batch 9 exercises the 8 + 1 column-chunk split.
            let layer = packed_layer(64, 32, axis, 11);
            let mut rng = SeededRng::new(12);
            let acts = Matrix::from_fn(32, 9, |_, _| rng.normal(0.0, 1.0));
            let dense = layer.dequantize().matmul(&acts);
            let cached = RuntimeEngine::new(EngineConfig {
                threads: 2,
                cache_bytes: 1 << 20,
                tile_rows: 16,
                parallel_threshold: 0,
                ..EngineConfig::default()
            });
            let first = cached.gemm(&layer, &acts);
            let second = cached.gemm(&layer, &acts);
            assert!(max_abs_diff(&first, &dense) < 1e-9, "{axis:?}");
            assert_eq!(first, second, "warm pass must repeat cold pass exactly");
        }
    }

    #[test]
    fn cached_engine_hits_on_second_pass() {
        let layer = packed_layer(32, 64, GroupAxis::DotProduct, 3);
        let mut rng = SeededRng::new(4);
        let acts = Matrix::from_fn(64, 4, |_, _| rng.normal(0.0, 1.0));
        let engine = RuntimeEngine::new(EngineConfig {
            threads: 1,
            cache_bytes: 1 << 20,
            tile_rows: 0,
            parallel_threshold: usize::MAX,
            ..EngineConfig::default()
        });
        let a = engine.gemm(&layer, &acts);
        let stats1 = engine.cache_stats().unwrap();
        let b = engine.gemm(&layer, &acts);
        let stats2 = engine.cache_stats().unwrap();
        assert_eq!(a, b);
        assert_eq!(stats1.hits, 0);
        assert_eq!(
            stats2.hits,
            layer.num_groups() as u64,
            "second pass must hit every tile"
        );
        assert_eq!(stats2.misses, stats1.misses);
    }

    #[test]
    fn tiny_problems_skip_thread_spawn() {
        let layer = packed_layer(16, 16, GroupAxis::DotProduct, 5);
        let mut rng = SeededRng::new(6);
        let acts = Matrix::from_fn(16, 2, |_, _| rng.normal(0.0, 1.0));
        let engine = RuntimeEngine::new(EngineConfig {
            threads: 8,
            cache_bytes: 0,
            tile_rows: 0,
            parallel_threshold: usize::MAX,
            ..EngineConfig::default()
        });
        assert_eq!(engine.gemm(&layer, &acts), layer.dequantize().matmul(&acts));
    }

    #[test]
    fn odd_tile_sizes_cover_all_rows() {
        for tile_rows in [1, 3, 7, 64, 1000] {
            let layer = packed_layer(48, 32, GroupAxis::OutputChannel, 7);
            let mut rng = SeededRng::new(8);
            let acts = Matrix::from_fn(32, 3, |_, _| rng.normal(0.0, 1.0));
            let engine = RuntimeEngine::new(EngineConfig {
                threads: 3,
                cache_bytes: 0,
                tile_rows,
                parallel_threshold: 0,
                ..EngineConfig::default()
            });
            assert_eq!(
                engine.gemm(&layer, &acts),
                layer.dequantize().matmul(&acts),
                "tile_rows={tile_rows}"
            );
        }
    }

    #[test]
    fn single_column_fast_path_matches_dense() {
        // m = 1 below the parallel threshold takes the serial GEMV route
        // (bit-exact uncached, 1e-9 through the bucketed cache); above
        // the threshold it still honors the row-tiled parallel config.
        for axis in [GroupAxis::DotProduct, GroupAxis::OutputChannel] {
            let layer = packed_layer(64, 32, axis, 13);
            let mut rng = SeededRng::new(14);
            let acts = Matrix::from_fn(32, 1, |_, _| rng.normal(0.0, 1.0));
            let dense = layer.dequantize().matmul(&acts);
            let gemv_route = RuntimeEngine::new(EngineConfig {
                threads: 4,
                cache_bytes: 0,
                tile_rows: 8,
                parallel_threshold: usize::MAX,
                ..EngineConfig::default()
            });
            assert_eq!(gemv_route.gemm(&layer, &acts), dense, "{axis:?} gemv");
            assert_eq!(
                gemv_route.gemv(&layer, acts.as_slice()),
                dense.as_slice().to_vec(),
                "{axis:?} gemv entry point"
            );
            let parallel_route = RuntimeEngine::new(EngineConfig {
                threads: 4,
                cache_bytes: 0,
                tile_rows: 8,
                parallel_threshold: 0,
                ..EngineConfig::default()
            });
            assert_eq!(
                parallel_route.gemm(&layer, &acts),
                dense,
                "{axis:?} parallel m=1"
            );
            let cached = RuntimeEngine::new(EngineConfig {
                threads: 4,
                cache_bytes: 1 << 20,
                tile_rows: 8,
                parallel_threshold: usize::MAX,
                ..EngineConfig::default()
            });
            assert!(
                max_abs_diff(&cached.gemm(&layer, &acts), &dense) < 1e-9,
                "{axis:?} cached"
            );
        }
    }

    #[test]
    fn every_column_chunk_width_is_exercised() {
        // n = 15 → chunks 8, 4, 2, 1.
        let layer = packed_layer(32, 32, GroupAxis::DotProduct, 9);
        let mut rng = SeededRng::new(10);
        let acts = Matrix::from_fn(32, 15, |_, _| rng.normal(0.0, 1.0));
        let dense = layer.dequantize().matmul(&acts);
        let engine = RuntimeEngine::new(EngineConfig {
            threads: 1,
            cache_bytes: 1 << 20,
            tile_rows: 0,
            parallel_threshold: usize::MAX,
            ..EngineConfig::default()
        });
        assert!(max_abs_diff(&engine.gemm(&layer, &acts), &dense) < 1e-9);
    }

    #[test]
    fn scalar_constructors_agree_and_pin_the_oracle() {
        // `RuntimeEngine::scalar()` and `EngineConfig::scalar()` are one
        // definition — the satellite fix for the duplicated constructors.
        let engine = RuntimeEngine::scalar();
        assert_eq!(engine.config(), EngineConfig::scalar());
        assert_eq!(engine.threads(), 1);
        assert!(engine.cache_stats().is_none(), "scalar engine has no cache");
        let layer = packed_layer(32, 32, GroupAxis::DotProduct, 15);
        assert_eq!(engine.kernel_for(&layer, 8), "scalar-f64");
        assert_eq!(engine.kernel_for(&layer, 1), "scalar-f64");
    }

    #[test]
    fn fast_policy_dispatches_lane_and_stays_within_pin() {
        let layer = packed_layer(64, 32, GroupAxis::DotProduct, 17);
        let mut rng = SeededRng::new(18);
        let acts = Matrix::from_fn(32, 9, |_, _| rng.normal(0.0, 1.0));
        let dense = layer.dequantize().matmul(&acts);
        let fast = RuntimeEngine::new(EngineConfig {
            threads: 1,
            cache_bytes: 0,
            parallel_threshold: usize::MAX,
            policy: KernelPolicy::Fast,
            ..EngineConfig::default()
        });
        // At m = 9, Fast picks the SIMD kernel when this host has one,
        // the lane kernel otherwise — both in the same tolerance class.
        let expected = if crate::kernels::SimdKernel::try_new().is_some() {
            crate::kernels::SIMD_KERNEL
        } else {
            LANE_KERNEL
        };
        let picked = fast.kernel_for(&layer, 9);
        assert_eq!(picked, expected);
        let got = fast.gemm(&layer, &acts);
        let tol = fast.registry().get(picked).unwrap().tolerance();
        for (&a, &b) in got.as_slice().iter().zip(dense.as_slice().iter()) {
            assert!(tol.accepts(a, b), "{picked} via engine: {a} vs {b}");
        }
        // With a cache configured, Fast prefers the bucketed kernel.
        let fast_cached = RuntimeEngine::new(EngineConfig {
            threads: 1,
            cache_bytes: 1 << 20,
            parallel_threshold: usize::MAX,
            policy: KernelPolicy::Fast,
            ..EngineConfig::default()
        });
        assert_eq!(fast_cached.kernel_for(&layer, 9), "bucketed-cache");
    }

    #[test]
    fn parallel_gemv_is_bitwise_identical_to_serial_for_every_policy() {
        for axis in [GroupAxis::DotProduct, GroupAxis::OutputChannel] {
            let layer = packed_layer(64, 32, axis, 19);
            let mut rng = SeededRng::new(20);
            let x: Vec<f64> = (0..32).map(|_| rng.normal(0.0, 1.0)).collect();
            for policy in [
                KernelPolicy::Default,
                KernelPolicy::Scalar,
                KernelPolicy::Fast,
            ] {
                let serial = RuntimeEngine::new(EngineConfig {
                    threads: 1,
                    cache_bytes: 0,
                    tile_rows: 0,
                    parallel_threshold: usize::MAX,
                    policy,
                    ..EngineConfig::default()
                })
                .gemv(&layer, &x);
                // Same kernel, reduction split across workers at several
                // tile sizes and thread counts: the stitch must reproduce
                // the serial result bit for bit, every run.
                for threads in [2usize, 3, 4] {
                    for tile_rows in [0usize, 8, 16, 48] {
                        let engine = RuntimeEngine::new(EngineConfig {
                            threads,
                            cache_bytes: 0,
                            tile_rows,
                            parallel_threshold: 0,
                            policy,
                            ..EngineConfig::default()
                        });
                        let a = engine.gemv(&layer, &x);
                        let b = engine.gemv(&layer, &x);
                        assert_eq!(
                            a, serial,
                            "{axis:?} {policy:?} threads={threads} tile_rows={tile_rows}"
                        );
                        assert_eq!(a, b, "{axis:?} {policy:?} repeat run");
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_gemv_through_cached_default_matches_serial_bitwise() {
        let layer = packed_layer(64, 32, GroupAxis::DotProduct, 23);
        let mut rng = SeededRng::new(24);
        let x: Vec<f64> = (0..32).map(|_| rng.normal(0.0, 1.0)).collect();
        let serial = RuntimeEngine::new(EngineConfig {
            threads: 1,
            cache_bytes: 1 << 20,
            parallel_threshold: usize::MAX,
            ..EngineConfig::default()
        });
        let parallel = RuntimeEngine::new(EngineConfig {
            threads: 4,
            cache_bytes: 1 << 20,
            tile_rows: 16,
            parallel_threshold: 0,
            ..EngineConfig::default()
        });
        // Cold and warm cache passes must agree with the serial engine.
        let s = serial.gemv(&layer, &x);
        assert_eq!(parallel.gemv(&layer, &x), s, "cold cache");
        assert_eq!(parallel.gemv(&layer, &x), s, "warm cache");
    }

    #[test]
    fn prefetch_warms_the_cache_and_leaves_results_unchanged() {
        let layer = Arc::new(packed_layer(64, 32, GroupAxis::DotProduct, 27));
        let mut rng = SeededRng::new(28);
        let x: Vec<f64> = (0..32).map(|_| rng.normal(0.0, 1.0)).collect();
        let plain = RuntimeEngine::new(EngineConfig {
            threads: 1,
            cache_bytes: 1 << 20,
            parallel_threshold: usize::MAX,
            ..EngineConfig::default()
        });
        let prefetching = RuntimeEngine::new(EngineConfig {
            threads: 1,
            cache_bytes: 1 << 20,
            parallel_threshold: usize::MAX,
            prefetch: true,
            ..EngineConfig::default()
        });
        assert!(plain.prefetch_stats().is_none());
        let stats = || prefetching.prefetch_stats().expect("prefetcher enabled");

        prefetching.prefetch(&layer);
        // The worker decodes asynchronously; wait (bounded) for the layer
        // to finish, then the first gemv must hit every group.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while stats().completed() < 1 {
            assert!(
                std::time::Instant::now() < deadline,
                "prefetch worker never completed the hinted layer"
            );
            std::thread::yield_now();
        }
        assert_eq!(stats().issued(), 1);
        let misses_before = prefetching.cache_stats().unwrap().misses;
        let warm = prefetching.gemv(&layer, &x);
        let after = prefetching.cache_stats().unwrap();
        assert_eq!(
            after.misses, misses_before,
            "post-prefetch gemv must not decode anything"
        );
        assert_eq!(after.hits, layer.num_groups() as u64);
        // Prefetch is observational: identical output with it off.
        assert_eq!(warm, plain.gemv(&layer, &x));
    }

    #[test]
    fn prefetch_queue_overflow_drops_hints_without_blocking() {
        let engine = RuntimeEngine::new(EngineConfig {
            threads: 1,
            cache_bytes: 1 << 20,
            parallel_threshold: usize::MAX,
            prefetch: true,
            ..EngineConfig::default()
        });
        let layer = Arc::new(packed_layer(64, 32, GroupAxis::DotProduct, 29));
        // Many more hints than the queue holds: every hint must return
        // immediately, each either accepted or counted as dropped.
        for _ in 0..64 {
            engine.prefetch(&layer);
        }
        let stats = engine.prefetch_stats().unwrap();
        assert_eq!(stats.issued() + stats.dropped(), 64);
    }

    #[test]
    fn engine_telemetry_exposes_availability_features_and_threads() {
        let engine = RuntimeEngine::new(EngineConfig {
            threads: 3,
            cache_bytes: 1 << 20,
            prefetch: true,
            ..EngineConfig::default()
        });
        let registry = MetricsRegistry::new();
        engine.register_telemetry(&registry);
        let text = registry.render_text();
        assert!(text.contains("microscopiq_kernel_available"));
        assert!(text.contains("kernel=\"scalar-f64\""));
        assert!(text.contains("kernel=\"simd-f32\""));
        assert!(text.contains("microscopiq_cpu_feature"));
        assert!(text.contains("feature=\"avx2\""));
        assert!(text.contains("microscopiq_engine_threads 3"));
        assert!(text.contains("microscopiq_prefetch_events_total"));
    }
}
