//! The parallel tiled executor: a [`RuntimeEngine`] that runs the fused
//! dequant-GEMM over row-block tiles on a std-thread pool with
//! work-stealing tile claims, executing every tile through the kernel the
//! [`KernelRegistry`] dispatches for the call (see [`crate::kernels`]).
//!
//! Tiling is over *output rows*: each tile owns a disjoint row range, so
//! workers never write the same output element. Tile claims come from one
//! shared atomic counter — an idle worker steals the next unclaimed tile
//! regardless of which worker "should" have taken it, which balances load
//! when outlier-heavy blocks make some tiles slower than others.
//!
//! Numerics are the dispatched kernel's pinned tolerance: under the
//! default policy the uncached path runs the scalar oracle (bit-identical
//! to `dequantize().matmul(..)` for any thread count or tile size) and
//! the cached path runs the bucketed kernel (within the runtime's 1e-9
//! contract, ~1e-12 observed); opting into [`KernelPolicy::Fast`] adds
//! the lane-blocked `f32` kernel at its own pinned relative tolerance.

use crate::cache::{CacheStats, DecodedCache};
use crate::kernels::{DispatchKey, KernelCtx, KernelOp, KernelPolicy, KernelRegistry, MicroKernel};
use crate::telemetry::{
    collector_fn, EngineTelemetry, MetricKind, MetricsRegistry, Sample, SampleValue,
};
use microscopiq_core::packed::PackedLayer;
use microscopiq_fm::PackedGemm;
use microscopiq_linalg::Matrix;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Worker threads; 0 means all available cores.
    pub threads: usize,
    /// Decoded-tile cache residency cap in bytes; 0 disables caching.
    pub cache_bytes: usize,
    /// Output rows per tile; 0 picks a size from the thread count.
    pub tile_rows: usize,
    /// Problems below this many multiply-accumulates run without
    /// spawning worker threads (spawn cost would dominate).
    pub parallel_threshold: usize,
    /// How the engine picks a kernel per call (see
    /// [`crate::kernels::dispatch`] for the policy table). The default
    /// reproduces the pre-dispatch engine bit for bit.
    pub policy: KernelPolicy,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            cache_bytes: 64 << 20,
            tile_rows: 0,
            parallel_threshold: 1 << 16,
            policy: KernelPolicy::Default,
        }
    }
}

impl EngineConfig {
    /// The scalar configuration — **the** single source of truth for what
    /// "the scalar engine" means ([`RuntimeEngine::scalar`] is exactly
    /// `RuntimeEngine::new(EngineConfig::scalar())`).
    ///
    /// Knobs the scalar engine honors: none beyond what this constructor
    /// pins. `policy: Scalar` forces the bit-exact oracle kernel on every
    /// call, `threads: 1` disables tiling entirely (so `tile_rows` is
    /// never read), `cache_bytes: 0` disables the decoded cache (the
    /// oracle would ignore it anyway), and `parallel_threshold` is moot
    /// once `threads == 1` (kept at `usize::MAX` for belt-and-braces).
    pub fn scalar() -> Self {
        Self {
            threads: 1,
            cache_bytes: 0,
            tile_rows: 0,
            parallel_threshold: usize::MAX,
            policy: KernelPolicy::Scalar,
        }
    }
}

/// A packed-weight GEMM engine: kernel dispatch + decoded-block cache +
/// parallel tiled execution. Implements [`PackedGemm`], so it plugs
/// straight into [`microscopiq_fm::PackedTinyFm`].
#[derive(Debug)]
pub struct RuntimeEngine {
    cfg: EngineConfig,
    threads: usize,
    // Arc'd so telemetry collectors can observe cache statistics after
    // the engine moves onto a worker thread.
    cache: Option<Arc<DecodedCache>>,
    registry: KernelRegistry,
}

impl RuntimeEngine {
    /// Creates an engine from a configuration with the default kernel
    /// registry.
    pub fn new(cfg: EngineConfig) -> Self {
        Self::with_registry(cfg, KernelRegistry::with_defaults())
    }

    /// Creates an engine dispatching over a caller-assembled registry
    /// (see [`crate::kernels::dispatch`] for how to register a kernel).
    pub fn with_registry(cfg: EngineConfig, registry: KernelRegistry) -> Self {
        let threads = if cfg.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            cfg.threads
        };
        let cache = (cfg.cache_bytes > 0).then(|| Arc::new(DecodedCache::new(cfg.cache_bytes)));
        Self {
            cfg,
            threads,
            cache,
            registry,
        }
    }

    /// The default engine: all cores, 64 MiB decoded-tile cache, default
    /// dispatch policy.
    pub fn parallel() -> Self {
        Self::new(EngineConfig::default())
    }

    /// The fast serving tier: [`KernelPolicy::Fast`] with the decoded
    /// cache disabled, so dispatch resolves to the lane-blocked `f32`
    /// kernel on every supported call — including the m = 1 GEMV shape
    /// that dominates per-step decode (~6× over the scalar oracle on
    /// 512×2048) — with the scalar oracle as fallback for outlier-heavy
    /// layers or oversized groups. (With a cache, `Fast` would resolve
    /// to the near-exact bucketed kernel, i.e. the default tier.)
    /// Results are within the lane kernel's pinned relative tolerance of
    /// the bit-exact default — the f32-tolerant serving conformance tier
    /// (`tests/fast_serving.rs`) bounds per-token logit deltas and pins
    /// argmax-token parity, which is what qualifies this engine for
    /// [`crate::Server::spawn`]. Unlike the bit-exact tiers, this
    /// engine's per-column results depend on batch composition (the lane
    /// GEMV entry rounds differently from a one-column slice of its
    /// GEMM), so serving determinism holds at the tolerance/argmax level,
    /// not bit for bit.
    pub fn fast() -> Self {
        Self::new(EngineConfig {
            policy: KernelPolicy::Fast,
            cache_bytes: 0,
            ..EngineConfig::default()
        })
    }

    /// The scalar fallback engine (single thread, no cache, scalar-oracle
    /// policy, bit-exact) — `Self::new(EngineConfig::scalar())`.
    pub fn scalar() -> Self {
        Self::new(EngineConfig::scalar())
    }

    /// The configuration the engine was built from.
    pub fn config(&self) -> EngineConfig {
        self.cfg
    }

    /// Worker threads this engine uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Decoded-cache statistics, when caching is enabled.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// The kernel registry this engine dispatches over.
    pub fn registry(&self) -> &KernelRegistry {
        &self.registry
    }

    /// Registered kernel names in dispatch priority order.
    pub fn kernel_names(&self) -> Vec<&'static str> {
        self.registry.names()
    }

    /// The kernel the engine would dispatch for an `m`-column call on
    /// this layer (introspection for benches and tests).
    pub fn kernel_for(&self, layer: &PackedLayer, m: usize) -> &'static str {
        let key = DispatchKey::for_call(layer, m);
        let ctx = self.ctx(layer);
        self.registry.select(self.cfg.policy, &key, &ctx).name()
    }

    /// The execution context for a layer: the decoded cache keyed by the
    /// layer's (memoized) content fingerprint, when caching is enabled.
    fn ctx(&self, layer: &PackedLayer) -> KernelCtx<'_> {
        match &self.cache {
            Some(cache) => KernelCtx::cached(cache.as_ref(), layer.content_fingerprint()),
            None => KernelCtx::uncached(),
        }
    }

    /// Computes `W · acts` from the packed layer through the dispatched
    /// kernel.
    ///
    /// # Panics
    ///
    /// Panics if `acts.rows() != layer.d_col()`.
    pub fn gemm(&self, layer: &PackedLayer, acts: &Matrix) -> Matrix {
        assert_eq!(
            layer.d_col(),
            acts.rows(),
            "fused gemm dimension mismatch: {}x{} · {}x{}",
            layer.d_row(),
            layer.d_col(),
            acts.rows(),
            acts.cols()
        );
        let n = acts.cols();
        let key = DispatchKey::for_call(layer, n);
        let ctx = self.ctx(layer);
        let kernel = self.registry.select(self.cfg.policy, &key, &ctx);
        let work = layer.d_row() * layer.d_col() * n;
        let serial = self.threads <= 1 || work < self.cfg.parallel_threshold;
        // One dispatch record per call (never per tile), keyed by the
        // shape the call executes as.
        let op = if serial && n == 1 {
            KernelOp::Gemv
        } else {
            KernelOp::Gemm
        };
        self.registry
            .record_call(kernel.name(), op, key.bits, layer.num_groups() as u64);
        if serial {
            // Decode fast path: one activation column (m = 1) runs the
            // kernel's GEMV entry (no tile bookkeeping, no Matrix output
            // staging). Large m = 1 problems still honor
            // `parallel_threshold` above, so decode on a big layer can
            // use the row-tiled workers.
            if n == 1 {
                let mut out = vec![0.0_f64; layer.d_row()];
                kernel.gemv(&ctx, layer, acts.as_slice(), &mut out);
                return Matrix::from_vec(layer.d_row(), 1, out);
            }
            let mut out = Matrix::zeros(layer.d_row(), n);
            kernel.gemm_rows(&ctx, layer, acts, 0, layer.d_row(), out.as_mut_slice());
            return out;
        }
        self.gemm_parallel(kernel, &ctx, layer, acts)
    }

    /// Computes `W · x` for a single activation column through the
    /// dispatched GEMV kernel — the decode fast path `PackedGemm::gemv`
    /// routes into. Problems above `parallel_threshold` fall back to the
    /// row-tiled parallel GEMM.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != layer.d_col()`.
    pub fn gemv(&self, layer: &PackedLayer, x: &[f64]) -> Vec<f64> {
        assert_eq!(
            layer.d_col(),
            x.len(),
            "fused gemv dimension mismatch: {}x{} · {}",
            layer.d_row(),
            layer.d_col(),
            x.len()
        );
        let work = layer.d_row() * layer.d_col();
        if self.threads > 1 && work >= self.cfg.parallel_threshold {
            let acts = Matrix::from_vec(x.len(), 1, x.to_vec());
            return self.gemm(layer, &acts).as_slice().to_vec();
        }
        let key = DispatchKey::for_call(layer, 1);
        let ctx = self.ctx(layer);
        let kernel = self.registry.select(self.cfg.policy, &key, &ctx);
        self.registry.record_call(
            kernel.name(),
            KernelOp::Gemv,
            key.bits,
            layer.num_groups() as u64,
        );
        let mut out = vec![0.0_f64; layer.d_row()];
        kernel.gemv(&ctx, layer, x, &mut out);
        out
    }

    /// Tile edges for a `d_row`-row output. Tiles align to macro-block
    /// boundaries on the `OutputChannel` axis so no group straddles tiles.
    fn tile_edges(&self, layer: &PackedLayer) -> Vec<usize> {
        let d_row = layer.d_row();
        let quantum = match layer.axis() {
            microscopiq_core::config::GroupAxis::DotProduct => 1,
            microscopiq_core::config::GroupAxis::OutputChannel => layer.macro_block(),
        };
        let rows = if self.cfg.tile_rows > 0 {
            self.cfg.tile_rows
        } else {
            // ~4 tiles per worker keeps the steal queue busy without
            // making tiles too small to amortize claim overhead.
            (d_row / (self.threads * 4)).max(1)
        };
        let rows = rows.next_multiple_of(quantum);
        let mut edges: Vec<usize> = (0..d_row).step_by(rows).collect();
        edges.push(d_row);
        edges
    }

    /// Parallel tiled execution: workers steal tiles off a shared counter
    /// and each runs the dispatched kernel into a private buffer; the
    /// main thread stitches tiles into the output (tiles are disjoint row
    /// ranges).
    fn gemm_parallel(
        &self,
        kernel: &dyn MicroKernel,
        ctx: &KernelCtx<'_>,
        layer: &PackedLayer,
        acts: &Matrix,
    ) -> Matrix {
        // Convert the activations to f32 once per GEMM for kernels that
        // consume an f32 image — every tile shares it instead of paying
        // one conversion per tile.
        let acts32: Option<Vec<f32>> = kernel
            .wants_f32_acts()
            .then(|| acts.as_slice().iter().map(|&v| v as f32).collect());
        let ctx = match &acts32 {
            Some(a) => ctx.with_acts32(a),
            None => *ctx,
        };
        let ctx = &ctx;
        let edges = self.tile_edges(layer);
        let n_tiles = edges.len() - 1;
        let next = AtomicUsize::new(0);
        let n = acts.cols();
        let workers = self.threads.min(n_tiles);
        let mut tiles: Vec<Option<Vec<f64>>> = (0..n_tiles).map(|_| None).collect();

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                let next = &next;
                let edges = &edges;
                handles.push(scope.spawn(move || {
                    let mut done: Vec<(usize, Vec<f64>)> = Vec::new();
                    loop {
                        let t = next.fetch_add(1, Ordering::Relaxed);
                        if t >= n_tiles {
                            break;
                        }
                        let (lo, hi) = (edges[t], edges[t + 1]);
                        let mut tile = vec![0.0_f64; (hi - lo) * n];
                        kernel.gemm_rows(ctx, layer, acts, lo, hi, &mut tile);
                        done.push((t, tile));
                    }
                    done
                }));
            }
            for h in handles {
                for (t, tile) in h.join().expect("worker panicked") {
                    tiles[t] = Some(tile);
                }
            }
        });

        let mut out = Matrix::zeros(layer.d_row(), n);
        for (t, tile) in tiles.into_iter().enumerate() {
            let tile = tile.expect("every tile computed");
            let (lo, hi) = (edges[t], edges[t + 1]);
            out.as_mut_slice()[lo * n..hi * n].copy_from_slice(&tile);
        }
        out
    }
}

impl PackedGemm for RuntimeEngine {
    fn name(&self) -> &str {
        "microscopiq-runtime"
    }

    fn matmul(&self, layer: &PackedLayer, acts: &Matrix) -> Matrix {
        self.gemm(layer, acts)
    }

    fn gemv(&self, layer: &PackedLayer, x: &[f64]) -> Vec<f64> {
        self.gemv(layer, x)
    }
}

impl EngineTelemetry for RuntimeEngine {
    /// Contributes the engine's dispatch counters and decoded-cache
    /// statistics as dynamic collector families, so one serving
    /// snapshot covers kernels and cache alongside scheduler/server
    /// instruments. Collectors hold `Arc`s to the engine's internals
    /// and read them lazily at snapshot time — nothing is added to the
    /// GEMM/GEMV hot path.
    fn register_telemetry(&self, registry: &MetricsRegistry) {
        let kernel_metrics = self.registry.metrics().clone();
        registry.register_collector(
            "microscopiq_kernel_calls_total",
            "Dispatched kernel invocations by (kernel, op, bits).",
            MetricKind::Counter,
            collector_fn(move || kernel_metrics.call_samples()),
        );
        let kernel_metrics = self.registry.metrics().clone();
        registry.register_collector(
            "microscopiq_kernel_decoded_groups_total",
            "Packed groups traversed by dispatched kernels (decode volume).",
            MetricKind::Counter,
            collector_fn(move || kernel_metrics.group_samples()),
        );
        if let Some(cache) = &self.cache {
            let c = cache.clone();
            registry.register_collector(
                "microscopiq_cache_events_total",
                "Decoded-block cache lookups by outcome (hit/miss/eviction).",
                MetricKind::Counter,
                collector_fn(move || {
                    let stats = c.stats();
                    [
                        ("hit", stats.hits),
                        ("miss", stats.misses),
                        ("eviction", stats.evictions),
                    ]
                    .into_iter()
                    .map(|(event, n)| Sample {
                        labels: vec![("event", event.to_string())],
                        value: SampleValue::Counter(n),
                    })
                    .collect()
                }),
            );
            let c = cache.clone();
            registry.register_collector(
                "microscopiq_cache_resident_bytes",
                "Decoded-block cache residency in bytes.",
                MetricKind::Gauge,
                collector_fn(move || {
                    vec![Sample {
                        labels: Vec::new(),
                        value: SampleValue::Gauge(c.stats().resident_bytes as i64),
                    }]
                }),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::LANE_KERNEL;
    use microscopiq_core::config::{GroupAxis, QuantConfig};
    use microscopiq_core::solver::solve;
    use microscopiq_core::traits::LayerTensors;
    use microscopiq_linalg::{Matrix, SeededRng};

    fn packed_layer(rows: usize, cols: usize, axis: GroupAxis, seed: u64) -> PackedLayer {
        let mut rng = SeededRng::new(seed);
        let mut w = Matrix::from_fn(rows, cols, |_, _| rng.normal(0.0, 0.02));
        for _ in 0..(rows * cols / 40) {
            let r = rng.below(rows);
            let c = rng.below(cols);
            w[(r, c)] = rng.sign() * rng.uniform_range(0.15, 0.5);
        }
        let x = Matrix::from_fn(cols, 8, |_, _| rng.normal(0.0, 1.0));
        let layer = LayerTensors::new(w, x).unwrap();
        let cfg = QuantConfig::w2()
            .macro_block(16)
            .row_block(16)
            .group_axis(axis)
            .build()
            .unwrap();
        solve(&layer, &cfg).unwrap().packed.unwrap()
    }

    fn max_abs_diff(a: &Matrix, b: &Matrix) -> f64 {
        a.as_slice()
            .iter()
            .zip(b.as_slice().iter())
            .fold(0.0_f64, |m, (x, y)| m.max((x - y).abs()))
    }

    #[test]
    fn parallel_uncached_matches_dense_bitwise_both_axes() {
        for axis in [GroupAxis::DotProduct, GroupAxis::OutputChannel] {
            let layer = packed_layer(64, 32, axis, 1);
            let mut rng = SeededRng::new(2);
            let acts = Matrix::from_fn(32, 9, |_, _| rng.normal(0.0, 1.0));
            let serial = RuntimeEngine::scalar().gemm(&layer, &acts);
            let parallel = RuntimeEngine::new(EngineConfig {
                threads: 4,
                cache_bytes: 0,
                tile_rows: 16,
                parallel_threshold: 0,
                ..EngineConfig::default()
            })
            .gemm(&layer, &acts);
            assert_eq!(serial, parallel, "{axis:?}");
            let dense = layer.dequantize().matmul(&acts);
            assert_eq!(serial, dense, "{axis:?} vs dense");
        }
    }

    #[test]
    fn cached_engine_matches_dense_within_tolerance_both_axes() {
        for axis in [GroupAxis::DotProduct, GroupAxis::OutputChannel] {
            // Batch 9 exercises the 8 + 1 column-chunk split.
            let layer = packed_layer(64, 32, axis, 11);
            let mut rng = SeededRng::new(12);
            let acts = Matrix::from_fn(32, 9, |_, _| rng.normal(0.0, 1.0));
            let dense = layer.dequantize().matmul(&acts);
            let cached = RuntimeEngine::new(EngineConfig {
                threads: 2,
                cache_bytes: 1 << 20,
                tile_rows: 16,
                parallel_threshold: 0,
                ..EngineConfig::default()
            });
            let first = cached.gemm(&layer, &acts);
            let second = cached.gemm(&layer, &acts);
            assert!(max_abs_diff(&first, &dense) < 1e-9, "{axis:?}");
            assert_eq!(first, second, "warm pass must repeat cold pass exactly");
        }
    }

    #[test]
    fn cached_engine_hits_on_second_pass() {
        let layer = packed_layer(32, 64, GroupAxis::DotProduct, 3);
        let mut rng = SeededRng::new(4);
        let acts = Matrix::from_fn(64, 4, |_, _| rng.normal(0.0, 1.0));
        let engine = RuntimeEngine::new(EngineConfig {
            threads: 1,
            cache_bytes: 1 << 20,
            tile_rows: 0,
            parallel_threshold: usize::MAX,
            ..EngineConfig::default()
        });
        let a = engine.gemm(&layer, &acts);
        let stats1 = engine.cache_stats().unwrap();
        let b = engine.gemm(&layer, &acts);
        let stats2 = engine.cache_stats().unwrap();
        assert_eq!(a, b);
        assert_eq!(stats1.hits, 0);
        assert_eq!(
            stats2.hits,
            layer.num_groups() as u64,
            "second pass must hit every tile"
        );
        assert_eq!(stats2.misses, stats1.misses);
    }

    #[test]
    fn tiny_problems_skip_thread_spawn() {
        let layer = packed_layer(16, 16, GroupAxis::DotProduct, 5);
        let mut rng = SeededRng::new(6);
        let acts = Matrix::from_fn(16, 2, |_, _| rng.normal(0.0, 1.0));
        let engine = RuntimeEngine::new(EngineConfig {
            threads: 8,
            cache_bytes: 0,
            tile_rows: 0,
            parallel_threshold: usize::MAX,
            ..EngineConfig::default()
        });
        assert_eq!(engine.gemm(&layer, &acts), layer.dequantize().matmul(&acts));
    }

    #[test]
    fn odd_tile_sizes_cover_all_rows() {
        for tile_rows in [1, 3, 7, 64, 1000] {
            let layer = packed_layer(48, 32, GroupAxis::OutputChannel, 7);
            let mut rng = SeededRng::new(8);
            let acts = Matrix::from_fn(32, 3, |_, _| rng.normal(0.0, 1.0));
            let engine = RuntimeEngine::new(EngineConfig {
                threads: 3,
                cache_bytes: 0,
                tile_rows,
                parallel_threshold: 0,
                ..EngineConfig::default()
            });
            assert_eq!(
                engine.gemm(&layer, &acts),
                layer.dequantize().matmul(&acts),
                "tile_rows={tile_rows}"
            );
        }
    }

    #[test]
    fn single_column_fast_path_matches_dense() {
        // m = 1 below the parallel threshold takes the serial GEMV route
        // (bit-exact uncached, 1e-9 through the bucketed cache); above
        // the threshold it still honors the row-tiled parallel config.
        for axis in [GroupAxis::DotProduct, GroupAxis::OutputChannel] {
            let layer = packed_layer(64, 32, axis, 13);
            let mut rng = SeededRng::new(14);
            let acts = Matrix::from_fn(32, 1, |_, _| rng.normal(0.0, 1.0));
            let dense = layer.dequantize().matmul(&acts);
            let gemv_route = RuntimeEngine::new(EngineConfig {
                threads: 4,
                cache_bytes: 0,
                tile_rows: 8,
                parallel_threshold: usize::MAX,
                ..EngineConfig::default()
            });
            assert_eq!(gemv_route.gemm(&layer, &acts), dense, "{axis:?} gemv");
            assert_eq!(
                gemv_route.gemv(&layer, acts.as_slice()),
                dense.as_slice().to_vec(),
                "{axis:?} gemv entry point"
            );
            let parallel_route = RuntimeEngine::new(EngineConfig {
                threads: 4,
                cache_bytes: 0,
                tile_rows: 8,
                parallel_threshold: 0,
                ..EngineConfig::default()
            });
            assert_eq!(
                parallel_route.gemm(&layer, &acts),
                dense,
                "{axis:?} parallel m=1"
            );
            let cached = RuntimeEngine::new(EngineConfig {
                threads: 4,
                cache_bytes: 1 << 20,
                tile_rows: 8,
                parallel_threshold: usize::MAX,
                ..EngineConfig::default()
            });
            assert!(
                max_abs_diff(&cached.gemm(&layer, &acts), &dense) < 1e-9,
                "{axis:?} cached"
            );
        }
    }

    #[test]
    fn every_column_chunk_width_is_exercised() {
        // n = 15 → chunks 8, 4, 2, 1.
        let layer = packed_layer(32, 32, GroupAxis::DotProduct, 9);
        let mut rng = SeededRng::new(10);
        let acts = Matrix::from_fn(32, 15, |_, _| rng.normal(0.0, 1.0));
        let dense = layer.dequantize().matmul(&acts);
        let engine = RuntimeEngine::new(EngineConfig {
            threads: 1,
            cache_bytes: 1 << 20,
            tile_rows: 0,
            parallel_threshold: usize::MAX,
            ..EngineConfig::default()
        });
        assert!(max_abs_diff(&engine.gemm(&layer, &acts), &dense) < 1e-9);
    }

    #[test]
    fn scalar_constructors_agree_and_pin_the_oracle() {
        // `RuntimeEngine::scalar()` and `EngineConfig::scalar()` are one
        // definition — the satellite fix for the duplicated constructors.
        let engine = RuntimeEngine::scalar();
        assert_eq!(engine.config(), EngineConfig::scalar());
        assert_eq!(engine.threads(), 1);
        assert!(engine.cache_stats().is_none(), "scalar engine has no cache");
        let layer = packed_layer(32, 32, GroupAxis::DotProduct, 15);
        assert_eq!(engine.kernel_for(&layer, 8), "scalar-f64");
        assert_eq!(engine.kernel_for(&layer, 1), "scalar-f64");
    }

    #[test]
    fn fast_policy_dispatches_lane_and_stays_within_pin() {
        let layer = packed_layer(64, 32, GroupAxis::DotProduct, 17);
        let mut rng = SeededRng::new(18);
        let acts = Matrix::from_fn(32, 9, |_, _| rng.normal(0.0, 1.0));
        let dense = layer.dequantize().matmul(&acts);
        let fast = RuntimeEngine::new(EngineConfig {
            threads: 1,
            cache_bytes: 0,
            parallel_threshold: usize::MAX,
            policy: KernelPolicy::Fast,
            ..EngineConfig::default()
        });
        assert_eq!(fast.kernel_for(&layer, 9), LANE_KERNEL);
        let got = fast.gemm(&layer, &acts);
        let tol = fast.registry().get(LANE_KERNEL).unwrap().tolerance();
        for (&a, &b) in got.as_slice().iter().zip(dense.as_slice().iter()) {
            assert!(tol.accepts(a, b), "lane via engine: {a} vs {b}");
        }
        // With a cache configured, Fast prefers the bucketed kernel.
        let fast_cached = RuntimeEngine::new(EngineConfig {
            threads: 1,
            cache_bytes: 1 << 20,
            parallel_threshold: usize::MAX,
            policy: KernelPolicy::Fast,
            ..EngineConfig::default()
        });
        assert_eq!(fast_cached.kernel_for(&layer, 9), "bucketed-cache");
    }
}
