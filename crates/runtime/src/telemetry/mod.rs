//! Runtime observability: an always-on, lock-light [`metrics`] layer
//! plus opt-in structured [`trace`] timelines.
//!
//! The serving stack threads one [`MetricsRegistry`] through every
//! layer: [`Session`](crate::Session) owns the registry and records
//! per-step batch composition, the [`server`](crate::server) registers
//! request lifecycle latencies and terminal outcomes into the same
//! registry, and the engine contributes per-kernel dispatch counters
//! and decoded-cache statistics through [`EngineTelemetry`]. Clients
//! read everything through
//! [`ServerHandle::metrics_snapshot`](crate::ServerHandle::metrics_snapshot)
//! (structured) or the Prometheus-style
//! [`MetricsSnapshot::render_text`] (text exposition), and pull
//! Perfetto-loadable timelines via
//! [`ServerHandle::export_trace`](crate::ServerHandle::export_trace).
//!
//! Instrumentation never perturbs numerics: metrics observe scheduling
//! and dispatch decisions, they do not influence them, and serving
//! conformance tests pin that default-dispatch token streams stay
//! bitwise identical with telemetry enabled, disabled, or traced.

pub mod metrics;
pub mod trace;

pub use metrics::{
    collector_fn, Collect, Counter, Gauge, Histogram, HistogramSnapshot, MetricKind, MetricSample,
    MetricsRegistry, MetricsSnapshot, Sample, SampleValue,
};
pub use trace::{TraceArg, TraceEvent, TracePhase, TraceSink};

/// Lets an engine contribute its own instruments (kernel dispatch
/// counters, cache statistics) to the serving registry. The server
/// calls [`EngineTelemetry::register_telemetry`] once at spawn, before
/// the worker thread starts.
///
/// The default implementation registers nothing, so engines without
/// internal state (e.g. the dense [`DequantGemm`](microscopiq_fm::DequantGemm)
/// oracle) satisfy the bound for free.
pub trait EngineTelemetry {
    /// Registers this engine's collectors into `registry`.
    fn register_telemetry(&self, registry: &MetricsRegistry) {
        let _ = registry;
    }
}

/// The dense reference engine has no kernels or cache to report.
impl EngineTelemetry for microscopiq_fm::DequantGemm {}
