//! Opt-in structured tracing: a bounded ring-buffer [`TraceSink`] of
//! per-request span events and per-step scheduler events, exportable as
//! Chrome trace-event-format JSON (loadable directly in Perfetto or
//! `chrome://tracing`).
//!
//! Tracing is **off by default** — the server only allocates a sink when
//! `ServerConfig::trace_events > 0` — and bounded: once the ring is
//! full, the oldest events are dropped (and counted) so a long-running
//! server cannot grow without limit. Event timestamps are microseconds
//! since the sink's creation.
//!
//! # Event vocabulary
//!
//! | name | ph | tid | meaning |
//! |---|---|---|---|
//! | `enqueued` | `i` | request id | client called `submit` |
//! | `admitted` | `i` | request id | worker pulled it off the queue |
//! | `prefill_chunk` | `X` | request id | one prefill segment advanced (args: `tokens`) |
//! | `first_token` | `i` | request id | first generated token streamed |
//! | `finished` / `cancelled` / `deadline_expired` / `faulted` | `i` | request id | terminal outcome |
//! | `step` | `X` | 0 | one scheduler step (args: batch composition) |
//!
//! `pid` is always 1 (one server process); `tid 0` is the scheduler
//! lane, and each request renders as its own timeline row.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Chrome trace-event phase. The sink emits only complete spans and
/// instants — enough for request/step timelines without begin/end
/// pairing state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// `ph: "X"` — a complete span with a duration.
    Complete,
    /// `ph: "i"` — an instantaneous event.
    Instant,
}

/// One argument value on a trace event.
#[derive(Debug, Clone, Copy)]
pub enum TraceArg {
    /// Unsigned integer argument.
    U64(u64),
    /// Floating-point argument.
    F64(f64),
}

/// One recorded event. Timestamps and durations are microseconds since
/// the sink's epoch.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Event name (fixed vocabulary; see module docs).
    pub name: &'static str,
    /// Span or instant.
    pub phase: TracePhase,
    /// Start time, µs since sink creation.
    pub ts_us: u64,
    /// Span duration in µs (0 for instants).
    pub dur_us: u64,
    /// Timeline row: request id, or 0 for the scheduler lane.
    pub tid: u64,
    /// Small fixed set of numeric arguments.
    pub args: Vec<(&'static str, TraceArg)>,
}

/// A bounded ring buffer of [`TraceEvent`]s. Recording takes a short
/// `Mutex` (tracing is opt-in, so serving hot paths only pay this when
/// a timeline was requested); export serializes the retained window.
#[derive(Debug)]
pub struct TraceSink {
    epoch: Instant,
    capacity: usize,
    events: Mutex<VecDeque<TraceEvent>>,
    dropped: AtomicU64,
}

impl TraceSink {
    /// A sink retaining at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            epoch: Instant::now(),
            capacity,
            events: Mutex::new(VecDeque::with_capacity(capacity.min(4096))),
            dropped: AtomicU64::new(0),
        }
    }

    /// Microseconds from the sink's epoch to `t` (0 for pre-epoch
    /// instants, e.g. a request enqueued before the server spawned).
    pub fn ts(&self, t: Instant) -> u64 {
        t.checked_duration_since(self.epoch)
            .map(|d| d.as_micros().min(u64::MAX as u128) as u64)
            .unwrap_or(0)
    }

    /// Records an instantaneous event.
    pub fn instant(
        &self,
        name: &'static str,
        tid: u64,
        ts_us: u64,
        args: Vec<(&'static str, TraceArg)>,
    ) {
        self.push(TraceEvent {
            name,
            phase: TracePhase::Instant,
            ts_us,
            dur_us: 0,
            tid,
            args,
        });
    }

    /// Records a complete span from `start_us` to `end_us`.
    pub fn complete(
        &self,
        name: &'static str,
        tid: u64,
        start_us: u64,
        end_us: u64,
        args: Vec<(&'static str, TraceArg)>,
    ) {
        self.push(TraceEvent {
            name,
            phase: TracePhase::Complete,
            ts_us: start_us,
            dur_us: end_us.saturating_sub(start_us),
            tid,
            args,
        });
    }

    fn push(&self, ev: TraceEvent) {
        let mut q = self.events.lock().expect("trace sink poisoned");
        if q.len() == self.capacity {
            q.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        q.push_back(ev);
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.events.lock().expect("trace sink poisoned").len()
    }

    /// True when no events have been recorded (or all were dropped).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Serializes the retained events as Chrome trace-event-format JSON
    /// (the object form: `{"traceEvents": [...]}`), loadable directly
    /// in Perfetto. Instants carry thread scope (`"s":"t"`); spans
    /// carry `dur`.
    pub fn export_json(&self) -> String {
        let events = self.events.lock().expect("trace sink poisoned");
        let mut out = String::with_capacity(events.len() * 96 + 128);
        out.push_str("{\"traceEvents\":[");
        for (i, ev) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"serving\",\"ph\":\"{}\",\"ts\":{},\"pid\":1,\"tid\":{}",
                escape_json(ev.name),
                match ev.phase {
                    TracePhase::Complete => "X",
                    TracePhase::Instant => "i",
                },
                ev.ts_us,
                ev.tid
            );
            match ev.phase {
                TracePhase::Complete => {
                    let _ = write!(out, ",\"dur\":{}", ev.dur_us);
                }
                TracePhase::Instant => out.push_str(",\"s\":\"t\""),
            }
            if !ev.args.is_empty() {
                out.push_str(",\"args\":{");
                for (j, (k, v)) in ev.args.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    match v {
                        TraceArg::U64(n) => {
                            let _ = write!(out, "\"{}\":{}", escape_json(k), n);
                        }
                        TraceArg::F64(x) => {
                            // JSON has no NaN/Inf literals; clamp to null.
                            if x.is_finite() {
                                let _ = write!(out, "\"{}\":{}", escape_json(k), x);
                            } else {
                                let _ = write!(out, "\"{}\":null", escape_json(k));
                            }
                        }
                    }
                }
                out.push('}');
            }
            out.push('}');
        }
        let _ = write!(
            out,
            "],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"dropped_events\":{}}}}}",
            self.dropped()
        );
        out
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_drops_oldest_beyond_capacity() {
        let sink = TraceSink::new(3);
        for i in 0..5u64 {
            sink.instant("enqueued", i, i * 10, Vec::new());
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 2);
        let json = sink.export_json();
        // The two oldest (tid 0, 1) were evicted.
        assert!(!json.contains("\"tid\":0,"));
        assert!(json.contains("\"tid\":2"));
        assert!(json.contains("\"tid\":4"));
        assert!(json.contains("\"dropped_events\":2"));
    }

    #[test]
    fn export_has_trace_event_shape() {
        let sink = TraceSink::new(16);
        sink.instant(
            "admitted",
            7,
            100,
            vec![("prompt_tokens", TraceArg::U64(12))],
        );
        sink.complete("step", 0, 100, 450, vec![("requests", TraceArg::U64(3))]);
        let json = sink.export_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"s\":\"t\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":350"));
        assert!(json.contains("\"args\":{\"prompt_tokens\":12}"));
        assert!(json.contains("\"args\":{\"requests\":3}"));
        assert!(json.ends_with("}"));
    }

    #[test]
    fn timestamps_are_relative_to_epoch_and_saturating() {
        let sink = TraceSink::new(4);
        let before = Instant::now();
        let sink2 = TraceSink::new(4);
        // An instant captured before sink2's epoch maps to 0, not a panic.
        assert_eq!(sink2.ts(before), 0);
        let later = Instant::now();
        // Non-decreasing for post-epoch instants.
        assert!(sink.ts(later) >= sink.ts(before));
    }

    #[test]
    fn json_escaping_handles_control_chars() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
