//! Hand-rolled, lock-light metrics primitives: [`Counter`], [`Gauge`],
//! and a log-bucketed mergeable [`Histogram`], collected through a
//! [`MetricsRegistry`] into immutable [`MetricsSnapshot`]s with a
//! Prometheus-style text exposition.
//!
//! The workspace is offline/vendored, so everything here is built on
//! `std::sync::atomic` — no external metrics crates. Design rules:
//!
//! * **Record paths are wait-free.** Incrementing a counter, moving a
//!   gauge, or recording a histogram sample is a handful of relaxed
//!   atomic RMW ops. No locks, no allocation, no branches on feature
//!   flags.
//! * **Locks only at the edges.** The registry's `Mutex` is taken when
//!   instruments are registered (startup) and when a snapshot or text
//!   exposition is rendered (rare, observer-driven) — never on the hot
//!   path.
//! * **Snapshots are mergeable.** [`HistogramSnapshot`]s from different
//!   workers/engines can be merged bucket-wise, which is what makes the
//!   log-bucketed representation worth its fixed footprint (~1 KiB of
//!   occupied buckets in practice; ≈7.6 KiB of atomics fully allocated).
//!
//! # Bucketing scheme
//!
//! Histograms store `u64` values (the runtime records microseconds for
//! latencies and raw counts for sizes) in HdrHistogram-style log-linear
//! buckets: values `0..16` are exact, and every power-of-two octave above
//! that is split into 16 linear sub-buckets, giving a guaranteed relative
//! error ≤ 1/16 ≈ 6.25% across the full `u64` range with a fixed 976
//! buckets. Quantiles are answered from bucket midpoints.

use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A monotonically increasing atomic counter (wraps only after `u64`
/// overflow, which the runtime treats as unreachable).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An atomic signed gauge (current level of something: live streams,
/// queue depth, resident KV rows).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Moves the gauge by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (peak tracking).
    #[inline]
    pub fn set_max(&self, v: i64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Precision bits: each octave above the exact range splits into
/// `2^PRECISION` linear sub-buckets.
const PRECISION: u32 = 4;
/// Sub-buckets per octave (16) — also the size of the exact `0..16`
/// prefix.
const SUB: usize = 1 << PRECISION;
/// Octaves covered above the exact prefix (`u64` has 64 bit positions;
/// the bottom `PRECISION` are the exact prefix).
const OCTAVES: usize = 64 - PRECISION as usize;
/// Total bucket count: exact prefix + 16 sub-buckets per octave.
pub const HISTOGRAM_BUCKETS: usize = SUB + OCTAVES * SUB;

/// Maps a value to its bucket index. Values `0..16` are exact; above
/// that, bucket = octave base + top-4-bits-below-the-leading-bit.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let octave = 63 - v.leading_zeros(); // >= PRECISION here
        let sub = ((v >> (octave - PRECISION)) - SUB as u64) as usize;
        SUB + (octave - PRECISION) as usize * SUB + sub
    }
}

/// Inclusive `[lo, hi]` value range covered by bucket `idx`.
fn bucket_bounds(idx: usize) -> (u64, u64) {
    if idx < SUB {
        return (idx as u64, idx as u64);
    }
    let octave = (idx - SUB) / SUB + PRECISION as usize;
    let sub = ((idx - SUB) % SUB) as u64;
    let width = 1u64 << (octave - PRECISION as usize);
    let lo = (1u64 << octave) + sub * width;
    (lo, lo + (width - 1))
}

/// A log-bucketed histogram of `u64` samples. Recording is three relaxed
/// atomic adds; snapshots are cheap, sparse, and mergeable.
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: Box<[AtomicU64; HISTOGRAM_BUCKETS]>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        // `AtomicU64` is not `Copy`; build the boxed array from a vec.
        let v: Vec<AtomicU64> = (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets = v
            .into_boxed_slice()
            .try_into()
            .unwrap_or_else(|_| unreachable!("vec length matches HISTOGRAM_BUCKETS"));
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records a duration in whole microseconds (the runtime's unit for
    /// every latency histogram).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// An immutable, mergeable snapshot (sparse: only occupied buckets).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (idx, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((idx, n));
            }
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum.load(Ordering::Relaxed))
            .finish()
    }
}

/// A point-in-time copy of a [`Histogram`]: occupied buckets only,
/// ascending by bucket index. Snapshots from independent histograms
/// (e.g. per-worker) merge bucket-wise without precision loss.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// `(bucket index, samples)` for occupied buckets, ascending.
    buckets: Vec<(usize, u64)>,
}

impl HistogramSnapshot {
    /// Merges another snapshot into this one bucket-wise.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        let mut merged = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, na)), Some(&&(ib, nb))) => {
                    if ia == ib {
                        merged.push((ia, na + nb));
                        a.next();
                        b.next();
                    } else if ia < ib {
                        merged.push((ia, na));
                        a.next();
                    } else {
                        merged.push((ib, nb));
                        b.next();
                    }
                }
                (Some(&&x), None) => {
                    merged.push(x);
                    a.next();
                }
                (None, Some(&&x)) => {
                    merged.push(x);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
    }

    /// The samples recorded between `earlier` and `self`, where
    /// `earlier` is a previous snapshot of the same (monotonically
    /// growing) histogram — the windowed view an overload controller
    /// grades so old samples cannot latch a breach forever.
    pub fn since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = Vec::with_capacity(self.buckets.len());
        let mut e = earlier.buckets.iter().peekable();
        for &(idx, n) in &self.buckets {
            let prev = loop {
                match e.peek() {
                    Some(&&(ei, _)) if ei < idx => {
                        e.next();
                    }
                    Some(&&(ei, en)) if ei == idx => break en,
                    _ => break 0,
                }
            };
            let delta = n.saturating_sub(prev);
            if delta > 0 {
                buckets.push((idx, delta));
            }
        }
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            buckets,
        }
    }

    /// Mean of the recorded values (exact — from the running sum), or
    /// 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at percentile `p` (0–100), answered from the midpoint
    /// of the bucket containing that rank: relative error ≤ 1/16.
    /// Returns 0.0 when empty.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for &(idx, n) in &self.buckets {
            cum += n;
            if cum >= target {
                let (lo, hi) = bucket_bounds(idx);
                return (lo + hi) as f64 / 2.0;
            }
        }
        let (lo, hi) = bucket_bounds(self.buckets.last().map(|&(i, _)| i).unwrap_or(0));
        (lo + hi) as f64 / 2.0
    }

    /// Occupied `(upper bound, samples)` pairs, ascending — the
    /// non-cumulative form behind the exposition's `le` buckets.
    pub fn occupied_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .map(|&(idx, n)| (bucket_bounds(idx).1, n))
    }
}

/// The kind of a metric family, for the exposition's `# TYPE` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Instantaneous level.
    Gauge,
    /// Log-bucketed distribution.
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One collected value, tagged with its kind.
#[derive(Debug, Clone)]
pub enum SampleValue {
    /// A counter reading.
    Counter(u64),
    /// A gauge reading.
    Gauge(i64),
    /// A full histogram snapshot.
    Histogram(HistogramSnapshot),
}

/// One labeled sample produced by a [`Collect`] implementation.
#[derive(Debug, Clone)]
pub struct Sample {
    /// `(label name, label value)` pairs.
    pub labels: Vec<(&'static str, String)>,
    /// The reading.
    pub value: SampleValue,
}

/// A dynamic metric family: produces its current samples on demand.
/// Used for instrument sets whose cardinality is not known at
/// registration time (per-kernel call counters, cache statistics owned
/// by an engine).
pub trait Collect: Send + Sync + fmt::Debug {
    /// The family's current samples. Label sets should be stable across
    /// calls for a given underlying series.
    fn collect(&self) -> Vec<Sample>;
}

/// Wraps a closure as a [`Collect`] family.
struct FnCollector<F>(F);

impl<F: Fn() -> Vec<Sample> + Send + Sync> Collect for FnCollector<F> {
    fn collect(&self) -> Vec<Sample> {
        (self.0)()
    }
}

impl<F> fmt::Debug for FnCollector<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("FnCollector")
    }
}

/// Builds a [`Collect`] from a closure.
pub fn collector_fn<F>(f: F) -> Arc<dyn Collect>
where
    F: Fn() -> Vec<Sample> + Send + Sync + 'static,
{
    Arc::new(FnCollector(f))
}

#[derive(Debug, Clone)]
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
    Collector(Arc<dyn Collect>),
}

#[derive(Debug, Clone)]
struct Entry {
    name: &'static str,
    help: &'static str,
    labels: Vec<(&'static str, String)>,
    kind: MetricKind,
    instrument: Instrument,
}

/// A cloneable registry of instruments. Registration and snapshotting
/// take a `Mutex`; the instruments themselves are shared `Arc`s whose
/// record paths never touch the registry again.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    entries: Arc<Mutex<Vec<Entry>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&self, entry: Entry) {
        self.entries
            .lock()
            .expect("metrics registry poisoned")
            .push(entry);
    }

    /// Registers and returns a counter.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Arc<Counter> {
        let c = Arc::new(Counter::new());
        self.push(Entry {
            name,
            help,
            labels: Vec::new(),
            kind: MetricKind::Counter,
            instrument: Instrument::Counter(c.clone()),
        });
        c
    }

    /// Registers and returns a counter carrying fixed labels.
    pub fn counter_labeled(
        &self,
        name: &'static str,
        help: &'static str,
        labels: Vec<(&'static str, String)>,
    ) -> Arc<Counter> {
        let c = Arc::new(Counter::new());
        self.push(Entry {
            name,
            help,
            labels,
            kind: MetricKind::Counter,
            instrument: Instrument::Counter(c.clone()),
        });
        c
    }

    /// Registers and returns a gauge.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Arc<Gauge> {
        let g = Arc::new(Gauge::new());
        self.push(Entry {
            name,
            help,
            labels: Vec::new(),
            kind: MetricKind::Gauge,
            instrument: Instrument::Gauge(g.clone()),
        });
        g
    }

    /// Registers and returns a histogram.
    pub fn histogram(&self, name: &'static str, help: &'static str) -> Arc<Histogram> {
        let h = Arc::new(Histogram::new());
        self.push(Entry {
            name,
            help,
            labels: Vec::new(),
            kind: MetricKind::Histogram,
            instrument: Instrument::Histogram(h.clone()),
        });
        h
    }

    /// Registers and returns a histogram carrying fixed labels — one
    /// series of a multi-series family (e.g. per-QoS-class latency).
    pub fn histogram_labeled(
        &self,
        name: &'static str,
        help: &'static str,
        labels: Vec<(&'static str, String)>,
    ) -> Arc<Histogram> {
        let h = Arc::new(Histogram::new());
        self.push(Entry {
            name,
            help,
            labels,
            kind: MetricKind::Histogram,
            instrument: Instrument::Histogram(h.clone()),
        });
        h
    }

    /// Registers a dynamic family; every sample it collects is exposed
    /// under `name` with the family's `kind`.
    pub fn register_collector(
        &self,
        name: &'static str,
        help: &'static str,
        kind: MetricKind,
        collector: Arc<dyn Collect>,
    ) {
        self.push(Entry {
            name,
            help,
            labels: Vec::new(),
            kind,
            instrument: Instrument::Collector(collector),
        });
    }

    /// Collects every instrument into an immutable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let entries = self.entries.lock().expect("metrics registry poisoned");
        let mut samples = Vec::with_capacity(entries.len());
        for e in entries.iter() {
            match &e.instrument {
                Instrument::Counter(c) => samples.push(MetricSample {
                    name: e.name,
                    help: e.help,
                    kind: e.kind,
                    labels: e.labels.clone(),
                    value: SampleValue::Counter(c.get()),
                }),
                Instrument::Gauge(g) => samples.push(MetricSample {
                    name: e.name,
                    help: e.help,
                    kind: e.kind,
                    labels: e.labels.clone(),
                    value: SampleValue::Gauge(g.get()),
                }),
                Instrument::Histogram(h) => samples.push(MetricSample {
                    name: e.name,
                    help: e.help,
                    kind: e.kind,
                    labels: e.labels.clone(),
                    value: SampleValue::Histogram(h.snapshot()),
                }),
                Instrument::Collector(col) => {
                    for s in col.collect() {
                        samples.push(MetricSample {
                            name: e.name,
                            help: e.help,
                            kind: e.kind,
                            labels: s.labels,
                            value: s.value,
                        });
                    }
                }
            }
        }
        MetricsSnapshot { samples }
    }

    /// Renders the current state in Prometheus text exposition format.
    pub fn render_text(&self) -> String {
        self.snapshot().render_text()
    }
}

/// One sample in a [`MetricsSnapshot`].
#[derive(Debug, Clone)]
pub struct MetricSample {
    /// Metric family name (e.g. `microscopiq_requests_admitted_total`).
    pub name: &'static str,
    /// Human description for the `# HELP` line.
    pub help: &'static str,
    /// Family kind for the `# TYPE` line.
    pub kind: MetricKind,
    /// Fixed labels attached at registration or collection time.
    pub labels: Vec<(&'static str, String)>,
    /// The reading.
    pub value: SampleValue,
}

/// A point-in-time collection of every registered instrument. Produced
/// by [`MetricsRegistry::snapshot`]; exposed to clients through
/// `ServerHandle::metrics_snapshot()`.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// All samples, in registration order (collector families expand in
    /// place).
    pub samples: Vec<MetricSample>,
}

impl MetricsSnapshot {
    /// Sum of every counter sample named `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .filter_map(|s| match s.value {
                SampleValue::Counter(v) => Some(v),
                _ => None,
            })
            .sum()
    }

    /// The counter sample named `name` whose labels include every
    /// `(key, value)` in `labels`.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .filter(|s| {
                labels
                    .iter()
                    .all(|(k, v)| s.labels.iter().any(|(lk, lv)| lk == k && lv == v))
            })
            .find_map(|s| match s.value {
                SampleValue::Counter(v) => Some(v),
                _ => None,
            })
    }

    /// The first gauge sample named `name`.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .find_map(|s| match s.value {
                SampleValue::Gauge(v) => Some(v),
                _ => None,
            })
    }

    /// The first histogram sample named `name`.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .find_map(|s| match &s.value {
                SampleValue::Histogram(h) => Some(h),
                _ => None,
            })
    }

    /// The histogram sample named `name` whose labels include every
    /// `(key, value)` in `labels` — one series of a labeled family.
    pub fn histogram_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Option<&HistogramSnapshot> {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .filter(|s| {
                labels
                    .iter()
                    .all(|(k, v)| s.labels.iter().any(|(lk, lv)| lk == k && lv == v))
            })
            .find_map(|s| match &s.value {
                SampleValue::Histogram(h) => Some(h),
                _ => None,
            })
    }

    /// All histogram series named `name` merged bucket-wise into one
    /// distribution (`None` when the family is absent) — the
    /// class-blind view of a per-class latency family.
    pub fn histogram_merged(&self, name: &str) -> Option<HistogramSnapshot> {
        let mut merged: Option<HistogramSnapshot> = None;
        for s in self.samples.iter().filter(|s| s.name == name) {
            if let SampleValue::Histogram(h) = &s.value {
                match &mut merged {
                    Some(m) => m.merge(h),
                    None => merged = Some(h.clone()),
                }
            }
        }
        merged
    }

    /// Renders the snapshot in Prometheus text exposition format:
    /// `# HELP` / `# TYPE` headers per family, `_total`-style counters
    /// as plain samples, histograms as cumulative `_bucket{le=..}`
    /// series plus `_sum` and `_count`.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let mut seen: Vec<&str> = Vec::new();
        for s in &self.samples {
            if !seen.contains(&s.name) {
                seen.push(s.name);
                out.push_str(&format!("# HELP {} {}\n", s.name, s.help));
                out.push_str(&format!("# TYPE {} {}\n", s.name, s.kind.as_str()));
                // Emit every sample of this family adjacent to its
                // header, preserving first-appearance family order.
                for fam in self.samples.iter().filter(|f| f.name == s.name) {
                    render_sample(&mut out, fam);
                }
            }
        }
        out
    }
}

fn label_str(labels: &[(&'static str, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", k, escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{}=\"{}\"", k, v));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn render_sample(out: &mut String, s: &MetricSample) {
    match &s.value {
        SampleValue::Counter(v) => {
            out.push_str(&format!("{}{} {}\n", s.name, label_str(&s.labels, None), v));
        }
        SampleValue::Gauge(v) => {
            out.push_str(&format!("{}{} {}\n", s.name, label_str(&s.labels, None), v));
        }
        SampleValue::Histogram(h) => {
            let mut cum = 0u64;
            for (le, n) in h.occupied_buckets() {
                cum += n;
                let le = le.to_string();
                out.push_str(&format!(
                    "{}_bucket{} {}\n",
                    s.name,
                    label_str(&s.labels, Some(("le", &le))),
                    cum
                ));
            }
            out.push_str(&format!(
                "{}_bucket{} {}\n",
                s.name,
                label_str(&s.labels, Some(("le", "+Inf"))),
                h.count
            ));
            out.push_str(&format!(
                "{}_sum{} {}\n",
                s.name,
                label_str(&s.labels, None),
                h.sum
            ));
            out.push_str(&format!(
                "{}_count{} {}\n",
                s.name,
                label_str(&s.labels, None),
                h.count
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_exact_below_sixteen() {
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert_eq!((lo, hi), (v, v));
        }
    }

    #[test]
    fn bucket_bounds_partition_the_u64_range() {
        // Consecutive buckets tile the range with no gaps or overlaps.
        let mut expected_lo = 0u64;
        for idx in 0..HISTOGRAM_BUCKETS {
            let (lo, hi) = bucket_bounds(idx);
            assert_eq!(lo, expected_lo, "bucket {idx} starts where the last ended");
            assert!(hi >= lo);
            if hi == u64::MAX {
                assert_eq!(idx, HISTOGRAM_BUCKETS - 1);
                return;
            }
            expected_lo = hi + 1;
        }
        panic!("final bucket must reach u64::MAX");
    }

    #[test]
    fn bucket_index_matches_bounds() {
        let probes = [
            0u64,
            1,
            15,
            16,
            17,
            31,
            32,
            100,
            1_000,
            123_456,
            u32::MAX as u64,
            u64::MAX / 2,
            u64::MAX,
        ];
        for &v in &probes {
            let idx = bucket_index(v);
            let (lo, hi) = bucket_bounds(idx);
            assert!(lo <= v && v <= hi, "value {v} outside bucket [{lo}, {hi}]");
            // Relative bucket width ≤ 1/16 of the value (above exact range).
            if v >= 16 {
                assert!((hi - lo) as f64 <= v as f64 / 16.0 + 1.0);
            }
        }
    }

    #[test]
    fn histogram_percentiles_within_relative_error() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 10_000);
        for (p, expect) in [(50.0, 5_000.0), (90.0, 9_000.0), (99.0, 9_900.0)] {
            let got = snap.percentile(p);
            let rel = (got - expect).abs() / expect;
            assert!(
                rel <= 0.07,
                "p{p}: got {got}, want ~{expect} (rel {rel:.4})"
            );
        }
        assert!((snap.mean() - 5_000.5).abs() < 1e-9);
    }

    #[test]
    fn snapshots_merge_bucketwise() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 0..100u64 {
            a.record(v);
            b.record(v * 37);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count, 200);
        assert_eq!(
            merged.sum,
            (0..100u64).sum::<u64>() + (0..100u64).map(|v| v * 37).sum::<u64>()
        );
        // Merging must agree with recording everything in one histogram.
        let c = Histogram::new();
        for v in 0..100u64 {
            c.record(v);
            c.record(v * 37);
        }
        assert_eq!(merged, c.snapshot());
    }

    #[test]
    fn registry_snapshot_and_accessors() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("test_ops_total", "Ops.");
        let g = reg.gauge("test_live", "Live.");
        let h = reg.histogram("test_latency_us", "Latency.");
        c.add(7);
        g.set(3);
        h.record(100);
        h.record(200);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("test_ops_total"), 7);
        assert_eq!(snap.gauge("test_live"), Some(3));
        let hist = snap.histogram("test_latency_us").unwrap();
        assert_eq!(hist.count, 2);
        assert_eq!(hist.sum, 300);
        assert_eq!(snap.counter("missing"), 0);
        assert_eq!(snap.gauge("missing"), None);
    }

    #[test]
    fn labeled_counters_and_collectors_expose_series() {
        let reg = MetricsRegistry::new();
        let c = reg.counter_labeled(
            "test_calls_total",
            "Calls by kind.",
            vec![("kind", "alpha".to_string())],
        );
        c.add(2);
        reg.register_collector(
            "test_dynamic_total",
            "Dynamic family.",
            MetricKind::Counter,
            collector_fn(|| {
                vec![Sample {
                    labels: vec![("shard", "0".to_string())],
                    value: SampleValue::Counter(11),
                }]
            }),
        );
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter_with("test_calls_total", &[("kind", "alpha")]),
            Some(2)
        );
        assert_eq!(
            snap.counter_with("test_dynamic_total", &[("shard", "0")]),
            Some(11)
        );
        assert_eq!(
            snap.counter_with("test_dynamic_total", &[("shard", "1")]),
            None
        );
    }

    #[test]
    fn render_text_is_prometheus_shaped() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("demo_ops_total", "Demo ops.");
        let g = reg.gauge("demo_depth", "Demo depth.");
        let h = reg.histogram("demo_wait_us", "Demo wait.");
        c.add(5);
        g.set(-2);
        h.record(10);
        h.record(20);
        let text = reg.render_text();
        assert!(text.contains("# HELP demo_ops_total Demo ops.\n"));
        assert!(text.contains("# TYPE demo_ops_total counter\n"));
        assert!(text.contains("demo_ops_total 5\n"));
        assert!(text.contains("# TYPE demo_depth gauge\n"));
        assert!(text.contains("demo_depth -2\n"));
        assert!(text.contains("# TYPE demo_wait_us histogram\n"));
        assert!(text.contains("demo_wait_us_bucket{le=\"10\"} 1\n"));
        assert!(text.contains("demo_wait_us_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("demo_wait_us_sum 30\n"));
        assert!(text.contains("demo_wait_us_count 2\n"));
        // Cumulative buckets are nondecreasing.
        let mut last = 0u64;
        for line in text
            .lines()
            .filter(|l| l.starts_with("demo_wait_us_bucket"))
        {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last);
            last = v;
        }
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("cc_total", "cc");
        let h = reg.histogram("cc_hist", "cc");
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let (c, h) = (c.clone(), h.clone());
                std::thread::spawn(move || {
                    for v in 0..10_000u64 {
                        c.inc();
                        h.record(v);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 40_000);
        let snap = h.snapshot();
        assert_eq!(snap.count, 40_000);
        assert_eq!(snap.sum, 4 * (0..10_000u64).sum::<u64>());
    }
}
