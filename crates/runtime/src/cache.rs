//! Cache-friendly decoded-block storage: per-macro-block tiles decoded
//! lazily on first touch and kept under an LRU residency cap, so repeated
//! forward passes amortize unpacking instead of re-decoding every block.
//!
//! A resident tile is an **execution-ready decoded form** chosen per bit
//! budget ([`DecodedTile`]). 2-bit layers use [`BucketTile`]: slot
//! indices grouped by inlier code (CSR layout) plus exact decoded outlier
//! values — since an inlier decodes to `code × 2^Isf` and 2-bit codes
//! take only 3 nonzero values, a whole bucket contributes
//! `code × 2^Isf × Σ activation-rows`, so the hot GEMM loop becomes
//! branch-free adds with one multiply per bucket, and zero weights vanish
//! from the index lists entirely (≈2 bytes per nonzero inlier, 4–5×
//! faster to execute than a value array). 4-bit layers use [`FlatTile`]
//! (`f32` values walked once at full width): 15 distinct codes split
//! 64-slot groups too thinly for bucketing to pay. Both keep values the
//! `f64` decode would produce — `f32` entries are exact castbacks, and
//! anything that does not round-trip stays `f64`.
//!
//! Layers are identified by [`PackedLayer::content_fingerprint`] (a
//! memoized content hash), not by address: two identical layers share
//! entries, and entries can never go stale because a key change follows
//! any content change. Shards keyed by group index keep lock contention
//! low under the parallel executor.

use microscopiq_core::packed::PackedLayer;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const SHARDS: usize = 16;

/// Multiply-rotate hasher for the (layer, group) keys — the default
/// SipHash costs more than the lookup it guards on the per-group hot
/// path; keys here are already high-entropy fingerprints.
#[derive(Default)]
pub struct FastKeyHasher(u64);

impl Hasher for FastKeyHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(23);
    }

    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }

    fn finish(&self) -> u64 {
        let mut h = self.0;
        h ^= h >> 31;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^ (h >> 29)
    }
}

type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastKeyHasher>>;

/// A decoded macro-block tile in execution-ready form.
///
/// `Bucketed` (bb = 2) groups slots by inlier code so the GEMM runs
/// multiply-free adds; `Flat` (bb = 4) stores plain `f32` values — 15
/// distinct codes split 64-slot groups too thinly for bucketing to pay,
/// and a branch-free multiply-add over a flat tile walks the group once
/// at full output width.
#[derive(Debug)]
pub enum DecodedTile {
    /// Code-bucketed form for 2-bit layers.
    Bucketed(BucketTile),
    /// Flat `f32` values for 4-bit layers.
    Flat(FlatTile),
}

impl DecodedTile {
    /// Decodes group `g` of a layer into the representation suited to its
    /// bit budget.
    pub fn build(layer: &PackedLayer, g: usize) -> Self {
        if layer.inlier_bits() == 2 {
            DecodedTile::Bucketed(BucketTile::build(layer, g))
        } else {
            DecodedTile::Flat(FlatTile::build(layer, g))
        }
    }

    /// Resident size in bytes.
    pub fn bytes(&self) -> usize {
        match self {
            DecodedTile::Bucketed(t) => t.bytes(),
            DecodedTile::Flat(t) => t.bytes(),
        }
    }

    /// Expands back to a dense value vector of length `len` (test /
    /// debugging aid; the executor never calls this).
    pub fn to_dense(&self, len: usize) -> Vec<f64> {
        match self {
            DecodedTile::Bucketed(t) => t.to_dense(len),
            DecodedTile::Flat(t) => t.to_dense(len),
        }
    }
}

/// A decoded macro-block as flat `f32` values plus exact `f64` escapes.
#[derive(Debug)]
pub struct FlatTile {
    /// Decoded values; exactly representable in `f32` (others are zeroed
    /// here and carried in `wide`).
    values: Vec<f32>,
    /// Slots whose decoded value does not round-trip through `f32`
    /// (pathological exponent ranges): (index, exact value).
    wide: Vec<(u16, f64)>,
}

impl FlatTile {
    /// Decodes group `g` of a layer into flat form.
    pub fn build(layer: &PackedLayer, g: usize) -> Self {
        let span = layer.group_span(g);
        let mut buf = vec![0.0_f64; span.len];
        layer.decode_group_into(g, &mut buf);
        let mut wide = Vec::new();
        let values = buf
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                if (v as f32) as f64 == v {
                    v as f32
                } else {
                    wide.push((i as u16, v));
                    0.0
                }
            })
            .collect();
        Self { values, wide }
    }

    /// The `f32` values (one per slot; wide-escaped slots read 0.0).
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Slots carried at full `f64` precision.
    pub fn wide(&self) -> &[(u16, f64)] {
        &self.wide
    }

    /// Resident size in bytes.
    pub fn bytes(&self) -> usize {
        self.values.len() * 4 + self.wide.len() * 10 + std::mem::size_of::<Self>()
    }

    /// Expands back to a dense value vector of length `len`.
    pub fn to_dense(&self, len: usize) -> Vec<f64> {
        let mut out = vec![0.0; len];
        for (o, &v) in out.iter_mut().zip(self.values.iter()) {
            *o = v as f64;
        }
        for &(i, v) in &self.wide {
            out[i as usize] = v;
        }
        out
    }
}

/// A decoded macro-block in bucketed execution form.
#[derive(Debug)]
pub struct BucketTile {
    /// The group's inlier scale `2^Isf`.
    scale: f64,
    /// Distinct nonzero inlier codes present, as signed integers.
    codes: Vec<i16>,
    /// CSR offsets into `idx`, one span per entry of `codes`
    /// (`len == codes.len() + 1`).
    offsets: Vec<u32>,
    /// Slot indices (group-relative), grouped by code.
    idx: Vec<u16>,
    /// Outlier slots: (group-relative index, exact decoded value).
    outliers: Vec<(u16, f64)>,
}

impl BucketTile {
    /// Decodes group `g` of a layer into bucketed form.
    pub fn build(layer: &PackedLayer, g: usize) -> Self {
        let span = layer.group_span(g);
        let group = &layer.groups()[g];
        let scale = group.isf.value();
        let bb = layer.inlier_bits();
        // Exact decoded values (for outliers) via the core decode path.
        let mut values = vec![0.0_f64; span.len];
        layer.decode_group_into(g, &mut values);

        let n_codes = 1usize << bb;
        // buckets[c] collects slot indices whose inlier code is `c`
        // (two's-complement value c − 2^bb for the upper half).
        let mut buckets: Vec<Vec<u16>> = vec![Vec::new(); n_codes];
        let mut outliers = Vec::new();
        let mut base = 0usize;
        for mb in &group.micro_blocks {
            let mut special = vec![false; mb.codes.len()];
            if let Some(meta) = &mb.meta {
                for e in meta.perm.entries() {
                    let up = base + e.upper_loc as usize;
                    special[e.upper_loc as usize] = true;
                    special[e.lower_loc as usize] = true; // pruned ⇒ zero
                    outliers.push((up as u16, values[up]));
                }
            }
            for (i, &c) in mb.codes.iter().enumerate() {
                if special[i] {
                    continue;
                }
                let shift = 8 - bb;
                let signed = ((c << shift) as i8 >> shift) as i32;
                if signed != 0 {
                    buckets[(signed + (n_codes as i32 / 2)) as usize].push((base + i) as u16);
                }
            }
            base += mb.codes.len();
        }

        let mut codes = Vec::new();
        let mut offsets = vec![0u32];
        let mut idx = Vec::new();
        for (b, slots) in buckets.into_iter().enumerate() {
            if slots.is_empty() {
                continue;
            }
            codes.push((b as i32 - n_codes as i32 / 2) as i16);
            idx.extend_from_slice(&slots);
            offsets.push(idx.len() as u32);
        }
        Self {
            scale,
            codes,
            offsets,
            idx,
            outliers,
        }
    }

    /// The group's inlier scale.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Iterates `(multiplier, slot-indices)` per bucket; the multiplier is
    /// the decoded inlier value `code × 2^Isf` shared by the bucket.
    pub fn buckets(&self) -> impl Iterator<Item = (f64, &[u16])> {
        self.codes.iter().enumerate().map(move |(b, &c)| {
            let lo = self.offsets[b] as usize;
            let hi = self.offsets[b + 1] as usize;
            (c as f64 * self.scale, &self.idx[lo..hi])
        })
    }

    /// The outlier slots (index, exact value).
    pub fn outliers(&self) -> &[(u16, f64)] {
        &self.outliers
    }

    /// Resident size in bytes.
    pub fn bytes(&self) -> usize {
        self.codes.len() * 2
            + self.offsets.len() * 4
            + self.idx.len() * 2
            + self.outliers.len() * 10
            + std::mem::size_of::<Self>()
    }

    /// Expands back to a dense value vector of length `len` (test /
    /// debugging aid; the executor never calls this).
    pub fn to_dense(&self, len: usize) -> Vec<f64> {
        let mut out = vec![0.0; len];
        for (m, slots) in self.buckets() {
            for &i in slots {
                out[i as usize] = m;
            }
        }
        for &(i, v) in &self.outliers {
            out[i as usize] = v;
        }
        out
    }
}

#[derive(Debug)]
struct Entry {
    tile: Arc<DecodedTile>,
    stamp: u64,
}

#[derive(Debug, Default)]
struct Shard {
    entries: FastMap<(u64, u32), Entry>,
    bytes: usize,
}

impl Shard {
    /// Evicts least-recently-used entries until `bytes <= cap`.
    fn enforce_cap(&mut self, cap: usize) -> usize {
        let mut evicted = 0;
        while self.bytes > cap && !self.entries.is_empty() {
            let oldest = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(&k, _)| k)
                .expect("non-empty");
            if let Some(e) = self.entries.remove(&oldest) {
                self.bytes -= e.tile.bytes();
                evicted += 1;
            }
        }
        evicted
    }
}

/// Cache statistics snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Tile lookups served from residency.
    pub hits: u64,
    /// Tile lookups that decoded fresh.
    pub misses: u64,
    /// Tiles evicted under the residency cap.
    pub evictions: u64,
    /// Bytes currently resident.
    pub resident_bytes: usize,
}

/// Sharded, LRU-capped store of lazily decoded macro-block tiles.
#[derive(Debug)]
pub struct DecodedCache {
    shards: Vec<Mutex<Shard>>,
    cap_per_shard: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl DecodedCache {
    /// Creates a cache with the given total residency cap in bytes.
    pub fn new(max_bytes: usize) -> Self {
        Self {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            cap_per_shard: (max_bytes / SHARDS).max(1),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Returns the decoded tile for group `g` of the layer, decoding and
    /// inserting it on first touch.
    pub fn get_or_decode(&self, layer_id: u64, layer: &PackedLayer, g: usize) -> Arc<DecodedTile> {
        let key = (layer_id, g as u32);
        let shard = &self.shards[g % SHARDS];
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        {
            let mut guard = shard.lock().expect("cache shard poisoned");
            if let Some(e) = guard.entries.get_mut(&key) {
                e.stamp = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return e.tile.clone();
            }
        }
        // Decode outside the lock: concurrent misses on one tile waste a
        // little work but never block each other.
        let tile = Arc::new(DecodedTile::build(layer, g));
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut guard = shard.lock().expect("cache shard poisoned");
        guard.bytes += tile.bytes();
        if let Some(prev) = guard.entries.insert(
            key,
            Entry {
                tile: tile.clone(),
                stamp,
            },
        ) {
            // A racing thread inserted first; ours replaced it.
            guard.bytes -= prev.tile.bytes();
        }
        let evicted = guard.enforce_cap(self.cap_per_shard);
        drop(guard);
        if evicted > 0 {
            self.evictions.fetch_add(evicted as u64, Ordering::Relaxed);
        }
        tile
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident_bytes: self
                .shards
                .iter()
                .map(|s| s.lock().expect("cache shard poisoned").bytes)
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microscopiq_core::config::{GroupAxis, QuantConfig};
    use microscopiq_core::solver::solve;
    use microscopiq_core::traits::LayerTensors;
    use microscopiq_linalg::{Matrix, SeededRng};

    fn packed_layer(seed: u64, bits: u32) -> PackedLayer {
        let mut rng = SeededRng::new(seed);
        let mut w = Matrix::from_fn(16, 64, |_, _| rng.normal(0.0, 0.02));
        for _ in 0..20 {
            let r = rng.below(16);
            let c = rng.below(64);
            w[(r, c)] = rng.sign() * rng.uniform_range(0.15, 0.5);
        }
        let x = Matrix::from_fn(64, 8, |_, _| rng.normal(0.0, 1.0));
        let layer = LayerTensors::new(w, x).unwrap();
        let cfg = QuantConfig::builder(bits)
            .macro_block(16)
            .row_block(16)
            .group_axis(GroupAxis::DotProduct)
            .build()
            .unwrap();
        solve(&layer, &cfg).unwrap().packed.unwrap()
    }

    #[test]
    fn decoded_tiles_expand_to_exact_decode() {
        for bits in [2, 4] {
            let layer = packed_layer(1, bits);
            let mut reference = vec![0.0; layer.macro_block()];
            for g in 0..layer.num_groups() {
                let span = layer.group_span(g);
                layer.decode_group_into(g, &mut reference);
                let tile = DecodedTile::build(&layer, g);
                match (&tile, bits) {
                    (DecodedTile::Bucketed(_), 2) | (DecodedTile::Flat(_), 4) => {}
                    other => panic!("wrong representation for bits={bits}: {other:?}"),
                }
                assert_eq!(
                    tile.to_dense(span.len),
                    &reference[..span.len],
                    "bits={bits} group {g}"
                );
            }
        }
    }

    #[test]
    fn buckets_partition_nonzero_inliers() {
        let layer = packed_layer(2, 2);
        for g in 0..layer.num_groups() {
            let span = layer.group_span(g);
            let tile = BucketTile::build(&layer, g);
            let mut seen = vec![false; span.len];
            for (m, slots) in tile.buckets() {
                assert!(m != 0.0, "zero bucket must not exist");
                for &i in slots {
                    assert!(!seen[i as usize], "slot {i} in two buckets");
                    seen[i as usize] = true;
                }
            }
            for &(i, _) in tile.outliers() {
                assert!(!seen[i as usize], "outlier slot {i} also bucketed");
                seen[i as usize] = true;
            }
        }
    }

    #[test]
    fn tiles_hit_on_reuse() {
        let layer = packed_layer(3, 2);
        let cache = DecodedCache::new(1 << 20);
        let id = layer.content_fingerprint();
        for g in 0..layer.num_groups() {
            let _ = cache.get_or_decode(id, &layer, g);
        }
        let s1 = cache.stats();
        assert_eq!(s1.misses, layer.num_groups() as u64);
        assert_eq!(s1.hits, 0);
        for g in 0..layer.num_groups() {
            let _ = cache.get_or_decode(id, &layer, g);
        }
        let s2 = cache.stats();
        assert_eq!(s2.hits, layer.num_groups() as u64);
        assert_eq!(s2.misses, s1.misses, "second pass must be all hits");
        assert!(s2.resident_bytes > 0);
    }

    #[test]
    fn residency_cap_evicts_lru() {
        let layer = packed_layer(4, 2);
        // Cap far below the full decoded size forces eviction.
        let cap = SHARDS * 96;
        let cache = DecodedCache::new(cap);
        let id = layer.content_fingerprint();
        for _ in 0..3 {
            for g in 0..layer.num_groups() {
                let _ = cache.get_or_decode(id, &layer, g);
            }
        }
        let s = cache.stats();
        assert!(s.evictions > 0, "tiny cap must evict");
        assert!(
            s.resident_bytes <= cap,
            "residency {} exceeds cap",
            s.resident_bytes
        );
    }

    #[test]
    fn layer_ids_are_content_addressed() {
        assert_ne!(
            packed_layer(5, 2).content_fingerprint(),
            packed_layer(6, 2).content_fingerprint()
        );
        assert_eq!(
            packed_layer(7, 2).content_fingerprint(),
            packed_layer(7, 2).content_fingerprint()
        );
    }

    #[test]
    fn layer_id_sees_code_changes() {
        // Two layers identical except one slot code must not collide.
        use microscopiq_core::packed::{PackedMacroBlock, PackedMicroBlock};
        use microscopiq_mx::scale::Pow2Scale;
        let mk = |c: u8| {
            let group = PackedMacroBlock {
                isf: Pow2Scale::new(-3),
                micro_blocks: vec![PackedMicroBlock {
                    codes: vec![c, 1, 0, 1, 0, 0, 1, 0],
                    meta: None,
                }],
            };
            PackedLayer::new(GroupAxis::DotProduct, 1, 8, 2, 8, 8, vec![group])
        };
        assert_ne!(mk(0).content_fingerprint(), mk(1).content_fingerprint());
    }
}
