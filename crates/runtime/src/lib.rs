//! `microscopiq-runtime` — the packed-weight inference engine.
//!
//! Everything upstream of this crate treats [`PackedLayer`] as a storage
//! format and computes on dense dequantized matrices. This crate makes the
//! packed format *executable*, the way the paper's PEs consume `bb`-bit
//! slots and per-block scales directly (Fig. 5, §5):
//!
//! * [`kernels`] — the pluggable kernel layer: every fused dequant-GEMM
//!   implementation lives behind the [`MicroKernel`] trait, and a
//!   [`KernelRegistry`] dispatches per call on (activation columns, bit
//!   width, outlier density, group size). The scalar `f64` oracle walks
//!   packed macro/micro-blocks, applies `Isf`/`MXScale`, reassembles
//!   outlier Upper/Lower halves via the permutation list, and accumulates
//!   into output tiles without ever materializing the dense weight matrix
//!   — bit-identical to `dequantize().matmul(..)` by construction. The
//!   lane-blocked `f32` kernel trades bitwise parity for an unrolled
//!   8-wide FMA inner loop within a pinned relative tolerance; explicit
//!   AVX2+FMA / NEON [`SimdKernel`]s register behind runtime feature
//!   detection, and the [`BucketedLaneKernel`] runs the paper's
//!   multiply-free code bucketing without a decode cache.
//! * [`cache`] — lazily decoded per-macro-block tiles in execution-ready
//!   bucketed form under an LRU residency cap, so repeated forward passes
//!   amortize unpacking and run multiply-free inlier accumulation.
//! * [`executor`] — [`RuntimeEngine`]: work-stealing parallel execution
//!   over row-block tiles on std threads, with a scalar fallback; plugs
//!   into [`microscopiq_fm::PackedTinyFm`] through the
//!   [`microscopiq_fm::PackedGemm`] trait.
//! * [`session`] — [`Session`]/[`BatchScheduler`]: continuous batching of
//!   concurrent generation requests over a packed TinyFM with
//!   **incremental KV-cached decode**: every request owns a
//!   [`microscopiq_fm::DecodeState`], its prompt advances as prefill
//!   segments — whole-prompt by default, or budgeted fixed-size chunks
//!   under [`SchedulerConfig`] so long prompts cannot stall live decode
//!   streams — and every later step feeds a single token through one
//!   segment-packed forward: O(prefix) per step instead of the
//!   O(prefix²) full-prefix recompute, bit-identical in exact-KV mode
//!   for every chunk size. [`Session::step`] returns the requests that
//!   finished on that step so callers can stream completions.
//! * [`server`] — [`Server`]/[`ServerHandle`]: the threaded serving
//!   front-end over [`Session`]. A dedicated worker thread drives the
//!   decode loop; client threads submit [`GenRequest`]s through a
//!   bounded admission queue (block or reject backpressure) and read
//!   per-token [`ResponseStream`]s. Requests join the running batch
//!   between steps, dropping a stream cancels its request (slot + KV
//!   cache reclaimed), and per-request deadlines expire mid-flight.
//! * [`telemetry`] — always-on lock-light metrics (atomic counters,
//!   gauges, log-bucketed mergeable histograms; Prometheus-style text
//!   exposition) plus an opt-in bounded [`TraceSink`] exporting
//!   per-request / per-step timelines as Chrome trace-event JSON.
//!   Instrumentation is observational only: default-dispatch token
//!   streams are bitwise identical with telemetry on or off.
//!
//! # Examples
//!
//! ```
//! use microscopiq_core::{MicroScopiQ, QuantConfig};
//! use microscopiq_core::traits::{LayerTensors, WeightQuantizer};
//! use microscopiq_linalg::{Matrix, SeededRng};
//! use microscopiq_runtime::RuntimeEngine;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = SeededRng::new(1);
//! let w = Matrix::from_fn(32, 64, |_, _| rng.normal(0.0, 0.02));
//! let x = Matrix::from_fn(64, 16, |_, _| rng.normal(0.0, 1.0));
//! let layer = LayerTensors::new(w, x)?;
//! let packed = MicroScopiQ::w2().quantize_layer(&layer)?.packed.unwrap();
//!
//! let acts = Matrix::from_fn(64, 4, |_, _| rng.normal(0.0, 1.0));
//! let engine = RuntimeEngine::parallel();
//! let fused = engine.gemm(&packed, &acts);
//! let dense = packed.dequantize().matmul(&acts);
//! // No dense weights were built, yet results agree to < 1e-9 (the
//! // scalar engine is even bit-identical).
//! for (a, b) in fused.as_slice().iter().zip(dense.as_slice().iter()) {
//!     assert!((a - b).abs() < 1e-9);
//! }
//! # Ok(())
//! # }
//! ```
//!
//! [`PackedLayer`]: microscopiq_core::packed::PackedLayer

pub mod cache;
pub mod executor;
pub mod kernels;
pub mod net;
pub mod prefix;
pub mod server;
pub mod session;
pub mod telemetry;

pub use cache::{BucketTile, CacheStats, DecodedCache, DecodedTile, FlatTile};
pub use executor::{EngineConfig, PrefetchStats, RuntimeEngine};
pub use kernels::{
    detected_cpu_features, fused_gemm_serial, fused_gemv_serial, BucketedCacheKernel,
    BucketedLaneKernel, DispatchKey, KernelCtx, KernelPolicy, KernelRegistry, LaneKernel,
    MicroKernel, ScalarKernel, SimdKernel, Tolerance,
};
pub use microscopiq_fm::{DecodeState, KvCacheConfig, KvMode};
pub use net::{
    Fleet, FleetConfig, FleetHandle, FleetReport, HttpConfig, HttpServer, SupervisionConfig,
};
pub use prefix::{PrefixCache, PrefixCacheConfig, PrefixCacheStats, PrefixMatch, PrefixMetrics};
pub use server::{
    AdmissionPolicy, Deadline, RequestOptions, ResponseStream, ServeError, Server, ServerConfig,
    ServerHandle, ServerReport, ShedPolicy, StreamEvent, SubmitError,
};
pub use session::{
    BatchScheduler, GenRequest, GenResult, QosClass, QosShares, RequestId, SchedulerConfig,
    Session, SessionStats, StepBatch, StepReport,
};
pub use telemetry::{
    EngineTelemetry, HistogramSnapshot, MetricsRegistry, MetricsSnapshot, TraceSink,
};
