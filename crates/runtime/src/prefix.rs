//! Prefix caching: shared-prompt KV reuse across requests.
//!
//! Production traffic is dominated by shared prefixes — system prompts,
//! few-shot templates — yet a cold serving stack prefills every request
//! from token 0. [`PrefixCache`] is a radix trie keyed on prompt tokens
//! whose nodes hold immutable, refcounted [`KvSegment`] bundles (one
//! segment per transformer block, frozen at prompt completion). On
//! admission the session matches the longest cached prefix, attaches its
//! segments copy-on-write ([`DecodeState::with_prefix`]) and
//! chunk-prefills only the suffix through the normal budget machinery.
//!
//! # Guarantees
//!
//! * **Exact KV**: attached rows are bitwise the rows a cold prefill
//!   would have produced, so reuse is bit-identical to cold prefill on
//!   any bit-exact engine (pinned by the `prefix_cache` test suite).
//! * **Quantized KV**: only fully quantized, group-aligned prefixes are
//!   cached (the quantize-at-most-once invariant freezes their serving
//!   values), and every trie edge keeps group-aligned boundaries — a
//!   split that would land off a group boundary is rounded down to one,
//!   and the segment layer asserts on misaligned splits. Reuse stays
//!   inside the usual bounded-attention-error contract; like quantized
//!   chunked prefill, it is not bitwise.
//!
//! # Capacity
//!
//! Resident bytes are budgeted: inserts beyond
//! [`PrefixCacheConfig::capacity_bytes`] evict least-recently-used
//! *unreferenced* trie leaves (no live request holds their segments and
//! no longer prefix extends them) and release their segments eagerly.
//! Referenced segments are never evicted out from under a request —
//! eviction drops the trie's refcount and the rows are freed when the
//! last attached request retires.

use crate::telemetry::{Counter, Gauge, Histogram, MetricsRegistry};
use microscopiq_core::kv_cache::{KvMode, KvSegment};
use microscopiq_fm::DecodeState;
use std::sync::Arc;

/// Knobs for a session's [`PrefixCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixCacheConfig {
    /// Byte budget for resident (trie-retained) KV segments, in the
    /// storage-format accounting of
    /// [`LayerKvCache::storage_bytes`](microscopiq_core::LayerKvCache::storage_bytes).
    /// Inserts beyond the budget evict unreferenced LRU leaves.
    pub capacity_bytes: usize,
}

impl Default for PrefixCacheConfig {
    fn default() -> Self {
        Self {
            // Generous for the TinyFM scale this workspace serves; a
            // 256-token, 4-layer, d64 exact prefix is ~1 MiB.
            capacity_bytes: 64 << 20,
        }
    }
}

/// Counters and gauges describing a [`PrefixCache`]'s lifetime activity
/// and current residency.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefixCacheStats {
    /// Admissions that matched a non-empty cached prefix.
    pub hits: u64,
    /// Admissions that matched nothing (including unmatchable one-token
    /// prompts).
    pub misses: u64,
    /// Trie nodes evicted under capacity pressure.
    pub evictions: u64,
    /// Total prompt tokens served from cache instead of prefilled.
    pub tokens_reused: u64,
    /// Storage-format bytes currently retained by the trie.
    pub resident_bytes: usize,
    /// Trie nodes currently resident.
    pub resident_nodes: usize,
}

/// Metric handles a [`PrefixCache`] publishes when built against a
/// [`MetricsRegistry`] — shared with the server handle so
/// `prefix_cache_stats()` reads without crossing into the worker thread.
#[derive(Debug, Clone)]
pub struct PrefixMetrics {
    pub(crate) hits: Arc<Counter>,
    pub(crate) misses: Arc<Counter>,
    pub(crate) evictions: Arc<Counter>,
    pub(crate) tokens_reused: Arc<Counter>,
    pub(crate) resident_bytes: Arc<Gauge>,
    pub(crate) resident_nodes: Arc<Gauge>,
    /// Distribution of reused-token counts per hit.
    pub(crate) reused_tokens: Arc<Histogram>,
}

impl PrefixMetrics {
    /// Registers the prefix-cache metric family into `reg`.
    pub fn register(reg: &MetricsRegistry) -> Self {
        Self {
            hits: reg.counter(
                "microscopiq_prefix_cache_hits",
                "Admissions that matched a cached prompt prefix",
            ),
            misses: reg.counter(
                "microscopiq_prefix_cache_misses",
                "Admissions that matched no cached prefix",
            ),
            evictions: reg.counter(
                "microscopiq_prefix_cache_evictions",
                "Prefix-trie nodes evicted under capacity pressure",
            ),
            tokens_reused: reg.counter(
                "microscopiq_prefix_cache_tokens_reused",
                "Prompt tokens served from the prefix cache instead of prefilled",
            ),
            resident_bytes: reg.gauge(
                "microscopiq_prefix_cache_resident_bytes",
                "Storage-format bytes retained by the prefix trie",
            ),
            resident_nodes: reg.gauge(
                "microscopiq_prefix_cache_resident_nodes",
                "Prefix-trie nodes currently resident",
            ),
            reused_tokens: reg.histogram(
                "microscopiq_prefix_cache_reused_tokens",
                "Reused prompt tokens per cache hit",
            ),
        }
    }

    /// Assembles a stats snapshot from the shared handles.
    pub(crate) fn snapshot(&self) -> PrefixCacheStats {
        PrefixCacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
            tokens_reused: self.tokens_reused.get(),
            resident_bytes: self.resident_bytes.get().max(0) as usize,
            resident_nodes: self.resident_nodes.get().max(0) as usize,
        }
    }
}

/// A successful [`PrefixCache::lookup`]: the number of prompt tokens
/// covered and the per-node segment bundles (outer by trie node in token
/// order, inner one segment per layer) to feed
/// [`DecodeState::with_prefix`]. Holding the match keeps the segments
/// alive independently of later evictions.
#[derive(Debug, Clone)]
pub struct PrefixMatch {
    /// Prompt tokens covered by the attached segments.
    pub tokens: usize,
    /// Segment bundles, outer-by-node, inner-by-layer.
    pub bundles: Vec<Vec<Arc<KvSegment>>>,
}

#[derive(Debug)]
struct PrefixNode {
    /// Tokens on the edge from the parent (non-empty).
    edge: Vec<usize>,
    /// One segment per layer, each `edge.len()` tokens long.
    segs: Vec<Arc<KvSegment>>,
    children: Vec<PrefixNode>,
    /// Monotonic LRU stamp (the cache's logical clock, not wall time).
    last_used: u64,
}

impl PrefixNode {
    fn bytes(&self) -> usize {
        self.segs.iter().map(|s| s.storage_bytes()).sum()
    }

    fn evictable(&self) -> bool {
        self.children.is_empty() && self.segs.iter().all(|s| Arc::strong_count(s) == 1)
    }
}

/// A byte-budgeted radix trie over prompt tokens mapping to immutable
/// per-layer KV segments. See the module docs for the sharing and
/// alignment contract.
#[derive(Debug)]
pub struct PrefixCache {
    children: Vec<PrefixNode>,
    cfg: PrefixCacheConfig,
    n_layers: usize,
    mode: KvMode,
    /// Group-alignment quantum for edge boundaries (1 in exact mode).
    align: usize,
    clock: u64,
    stats: PrefixCacheStats,
    metrics: Option<PrefixMetrics>,
}

impl PrefixCache {
    /// Creates an empty cache for models of `n_layers` blocks storing KV
    /// in `mode`.
    pub fn new(cfg: PrefixCacheConfig, n_layers: usize, mode: KvMode) -> Self {
        let align = match mode {
            KvMode::Exact => 1,
            KvMode::Quantized(q) => q.group.max(1),
        };
        Self {
            children: Vec::new(),
            cfg,
            n_layers,
            mode,
            align,
            clock: 0,
            stats: PrefixCacheStats::default(),
            metrics: None,
        }
    }

    /// Like [`PrefixCache::new`], additionally publishing the
    /// `microscopiq_prefix_cache_*` metric family into `reg`.
    pub fn with_metrics(
        cfg: PrefixCacheConfig,
        n_layers: usize,
        mode: KvMode,
        reg: &MetricsRegistry,
    ) -> Self {
        let mut cache = Self::new(cfg, n_layers, mode);
        cache.metrics = Some(PrefixMetrics::register(reg));
        cache
    }

    /// The metric handles, if the cache publishes telemetry.
    pub fn metrics(&self) -> Option<&PrefixMetrics> {
        self.metrics.as_ref()
    }

    /// Current counters and residency.
    pub fn stats(&self) -> PrefixCacheStats {
        self.stats
    }

    /// Replaces the byte budget and immediately evicts down to it.
    /// Shrinking to 0 drains every unreferenced node — a clean way to
    /// assert nothing leaked once traffic has retired.
    pub fn set_capacity(&mut self, capacity_bytes: usize) {
        self.cfg.capacity_bytes = capacity_bytes;
        self.evict_to_budget();
    }

    /// Matches the longest cached prefix of `prompt`, capped so at
    /// least one prompt token is always left to prefill (sampling needs
    /// a live forward pass over the final token). A mid-edge match
    /// splits the node (copy-on-split, group-aligned) so the matched
    /// part becomes a whole node. Returns `None` — and counts a miss —
    /// when nothing usable is cached.
    pub fn lookup(&mut self, prompt: &[usize]) -> Option<PrefixMatch> {
        let cap = align_down(prompt.len().saturating_sub(1), self.align);
        self.clock += 1;
        let clock = self.clock;
        let align = self.align;
        let mut bundles = Vec::new();
        let mut pos = 0usize;
        let mut bytes_delta = 0isize;
        let mut nodes_delta = 0isize;
        let mut cur = &mut self.children;
        while pos < cap {
            let Some(idx) = cur.iter().position(|c| c.edge[0] == prompt[pos]) else {
                break;
            };
            let node = &mut cur[idx];
            let common = lcp(&node.edge, &prompt[pos..]);
            let take = align_down(common.min(cap - pos), align);
            if take == 0 {
                break;
            }
            if take < node.edge.len() {
                split_node(node, take, &mut bytes_delta, &mut nodes_delta);
            }
            node.last_used = clock;
            bundles.push(node.segs.clone());
            pos += take;
            cur = &mut node.children;
        }
        self.apply_deltas(bytes_delta, nodes_delta);
        if pos == 0 {
            self.stats.misses += 1;
            if let Some(m) = &self.metrics {
                m.misses.inc();
            }
            return None;
        }
        self.stats.hits += 1;
        self.stats.tokens_reused += pos as u64;
        if let Some(m) = &self.metrics {
            m.hits.inc();
            m.tokens_reused.add(pos as u64);
            m.reused_tokens.record(pos as u64);
        }
        Some(PrefixMatch {
            tokens: pos,
            bundles,
        })
    }

    /// Inserts the shareable prefix of a completed prompt: rows
    /// `[0, min(prompt_len, state.shareable_len()))` of `state`'s caches
    /// are copied bitwise into trie segments (splitting existing nodes
    /// at the divergence point, group-aligned). Walks the live trie, so
    /// it is robust to evictions or competing inserts between this
    /// request's admission and its prompt completion. May evict LRU
    /// unreferenced leaves to stay within budget.
    pub fn insert(&mut self, state: &DecodeState, prompt_len: usize) {
        assert_eq!(
            state.mode(),
            self.mode,
            "prefix cache and decode state disagree on KV mode"
        );
        let seal = align_down(prompt_len.min(state.shareable_len()), self.align);
        if seal == 0 {
            return;
        }
        let prompt = &state.tokens()[..seal];
        self.clock += 1;
        let clock = self.clock;
        let align = self.align;
        let n_layers = self.n_layers;
        let mut bytes_delta = 0isize;
        let mut nodes_delta = 0isize;
        let mut pos = 0usize;
        let mut cur = &mut self.children;
        while pos < prompt.len() {
            let Some(idx) = cur.iter().position(|c| c.edge[0] == prompt[pos]) else {
                let segs: Vec<Arc<KvSegment>> = (0..n_layers)
                    .map(|l| Arc::new(KvSegment::from_cache(state.cache(l), pos, prompt.len())))
                    .collect();
                let node = PrefixNode {
                    edge: prompt[pos..].to_vec(),
                    segs,
                    children: Vec::new(),
                    last_used: clock,
                };
                bytes_delta += node.bytes() as isize;
                nodes_delta += 1;
                cur.push(node);
                break;
            };
            let node = &mut cur[idx];
            let common = lcp(&node.edge, &prompt[pos..]);
            let take = align_down(common, align);
            if take == 0 {
                // The shared run is shorter than one group; splitting
                // here would be misaligned, so leave the trie as is.
                break;
            }
            if take < node.edge.len() {
                split_node(node, take, &mut bytes_delta, &mut nodes_delta);
            }
            node.last_used = clock;
            pos += take;
            cur = &mut node.children;
        }
        self.apply_deltas(bytes_delta, nodes_delta);
        self.evict_to_budget();
    }

    fn apply_deltas(&mut self, bytes: isize, nodes: isize) {
        self.stats.resident_bytes = (self.stats.resident_bytes as isize + bytes).max(0) as usize;
        self.stats.resident_nodes = (self.stats.resident_nodes as isize + nodes).max(0) as usize;
        if let Some(m) = &self.metrics {
            m.resident_bytes.set(self.stats.resident_bytes as i64);
            m.resident_nodes.set(self.stats.resident_nodes as i64);
        }
    }

    /// Evicts least-recently-used unreferenced leaves until resident
    /// bytes fit the budget (or nothing evictable remains). Eviction
    /// releases the trie's segment refcounts eagerly; rows still
    /// attached to live requests are freed when those requests retire.
    fn evict_to_budget(&mut self) {
        while self.stats.resident_bytes > self.cfg.capacity_bytes {
            let Some(stamp) = min_evictable(&self.children) else {
                break;
            };
            let Some(freed) = remove_leaf(&mut self.children, stamp) else {
                break;
            };
            self.stats.evictions += 1;
            if let Some(m) = &self.metrics {
                m.evictions.inc();
            }
            self.apply_deltas(-(freed as isize), -1);
        }
    }
}

/// Longest common prefix length of `edge` and `rest`.
fn lcp(edge: &[usize], rest: &[usize]) -> usize {
    edge.iter().zip(rest).take_while(|(a, b)| a == b).count()
}

fn align_down(n: usize, align: usize) -> usize {
    n - n % align.max(1)
}

/// Splits `node` at edge offset `at` (group-aligned by construction):
/// the node keeps `edge[..at]` with sliced segments, and a new child
/// inherits the remainder plus the original children. Copy-on-split —
/// existing holders of the old segments are unaffected; the trie's
/// references move to the slices.
fn split_node(node: &mut PrefixNode, at: usize, bytes_delta: &mut isize, nodes_delta: &mut isize) {
    let rest_edge = node.edge.split_off(at);
    let old_segs = std::mem::take(&mut node.segs);
    let old_bytes: usize = old_segs.iter().map(|s| s.storage_bytes()).sum();
    let left: Vec<Arc<KvSegment>> = old_segs.iter().map(|s| Arc::new(s.slice(0, at))).collect();
    let right: Vec<Arc<KvSegment>> = old_segs
        .iter()
        .map(|s| Arc::new(s.slice(at, s.len())))
        .collect();
    node.segs = left;
    let child = PrefixNode {
        edge: rest_edge,
        segs: right,
        children: std::mem::take(&mut node.children),
        last_used: node.last_used,
    };
    node.children = vec![child];
    let new_bytes: usize = node.bytes() + node.children[0].bytes();
    *bytes_delta += new_bytes as isize - old_bytes as isize;
    *nodes_delta += 1;
}

fn min_evictable(children: &[PrefixNode]) -> Option<u64> {
    let mut best: Option<u64> = None;
    for c in children {
        let candidate = if c.children.is_empty() {
            c.evictable().then_some(c.last_used)
        } else {
            min_evictable(&c.children)
        };
        best = match (best, candidate) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
    }
    best
}

/// Removes the first evictable leaf stamped `stamp`, returning its
/// byte footprint.
fn remove_leaf(children: &mut Vec<PrefixNode>, stamp: u64) -> Option<usize> {
    for i in 0..children.len() {
        if children[i].children.is_empty() {
            if children[i].last_used == stamp && children[i].evictable() {
                let node = children.remove(i);
                return Some(node.bytes());
            }
        } else if let Some(b) = remove_leaf(&mut children[i].children, stamp) {
            return Some(b);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use microscopiq_fm::{DecodeState, TinyFm, TinyFmConfig};

    fn model() -> TinyFm {
        TinyFm::teacher(
            TinyFmConfig {
                vocab: 32,
                d_model: 8,
                d_ff: 16,
                n_layers: 2,
                n_heads: 2,
            },
            9,
        )
    }

    fn prefilled(m: &TinyFm, prompt: &[usize]) -> DecodeState {
        let (state, _) = m.prefill(prompt, KvMode::Exact).expect("prefill");
        state
    }

    #[test]
    fn lookup_misses_until_insert_then_hits_with_split() {
        let m = model();
        let mut cache = PrefixCache::new(PrefixCacheConfig::default(), 2, KvMode::Exact);
        let prompt_a: Vec<usize> = (0..12).map(|i| i % 32).collect();
        assert!(cache.lookup(&prompt_a).is_none());
        assert_eq!(cache.stats().misses, 1);

        let state = prefilled(&m, &prompt_a);
        cache.insert(&state, prompt_a.len());
        assert_eq!(cache.stats().resident_nodes, 1);
        assert!(cache.stats().resident_bytes > 0);

        // Same prompt: capped one short of the full prompt, splitting
        // the 12-token node into 11 + 1.
        let hit = cache.lookup(&prompt_a).expect("hit");
        assert_eq!(hit.tokens, 11);
        assert_eq!(hit.bundles.len(), 1);
        assert_eq!(hit.bundles[0].len(), 2);
        assert_eq!(cache.stats().resident_nodes, 2);

        // Diverging prompt: shares 8 tokens then branches.
        let mut prompt_b = prompt_a[..8].to_vec();
        prompt_b.extend([30, 31, 30, 31]);
        let hit = cache.lookup(&prompt_b).expect("shared prefix hit");
        assert_eq!(hit.tokens, 8);
        let total: usize = hit.bundles.iter().map(|b| b[0].len()).sum();
        assert_eq!(total, 8);
        assert_eq!(cache.stats().hits, 2);
        assert_eq!(cache.stats().tokens_reused, 19);
    }

    #[test]
    fn insert_is_idempotent_and_byte_accounting_is_stable() {
        let m = model();
        let mut cache = PrefixCache::new(PrefixCacheConfig::default(), 2, KvMode::Exact);
        let prompt: Vec<usize> = (0..10).collect();
        let state = prefilled(&m, &prompt);
        cache.insert(&state, prompt.len());
        let bytes = cache.stats().resident_bytes;
        let nodes = cache.stats().resident_nodes;
        cache.insert(&state, prompt.len());
        assert_eq!(cache.stats().resident_bytes, bytes);
        assert_eq!(cache.stats().resident_nodes, nodes);
        // Splitting conserves bytes (copy-on-split slices sum to the
        // original).
        cache.lookup(&prompt).expect("hit");
        assert_eq!(cache.stats().resident_bytes, bytes);
    }

    #[test]
    fn eviction_respects_refcounts_and_lru_order() {
        let m = model();
        let mut cache = PrefixCache::new(
            PrefixCacheConfig {
                capacity_bytes: usize::MAX,
            },
            2,
            KvMode::Exact,
        );
        let prompt_a: Vec<usize> = (0..8).collect();
        let prompt_b: Vec<usize> = (8..16).collect();
        cache.insert(&prefilled(&m, &prompt_a), 8);
        cache.insert(&prefilled(&m, &prompt_b), 8);
        assert_eq!(cache.stats().resident_nodes, 2);

        // Hold A's segments like a live request would, then shrink to 0:
        // B and the unreferenced 1-token remainder of A's capped-lookup
        // split can go, but the held 7-token node cannot.
        let held = cache.lookup(&prompt_a).expect("hit");
        cache.set_capacity(0);
        assert_eq!(cache.stats().evictions, 2);
        assert!(cache.stats().resident_bytes > 0);
        assert_eq!(cache.stats().resident_nodes, 1);
        drop(held);
        // …and drains once released.
        cache.set_capacity(0);
        assert_eq!(cache.stats().resident_bytes, 0);
        assert_eq!(cache.stats().resident_nodes, 0);
    }

    #[test]
    fn one_token_prompts_are_unmatchable() {
        let m = model();
        let mut cache = PrefixCache::new(PrefixCacheConfig::default(), 2, KvMode::Exact);
        let state = prefilled(&m, &[5]);
        cache.insert(&state, 1);
        // The single token is cached, but lookup must leave at least one
        // token to prefill.
        assert!(cache.lookup(&[5]).is_none());
        assert!(cache.lookup(&[5, 6]).is_some(), "longer prompt reuses it");
    }

    #[test]
    fn quantized_edges_stay_group_aligned() {
        use microscopiq_core::kv_cache::KvCacheConfig;
        let m = model();
        let q = KvCacheConfig {
            bits: 4,
            group: 4,
            residual: 4,
        };
        let mode = KvMode::Quantized(q);
        let mut cache = PrefixCache::new(PrefixCacheConfig::default(), 2, mode);
        let prompt: Vec<usize> = (0..14).map(|i| i % 32).collect();
        let (state, _) = m.prefill(&prompt, mode).expect("prefill");
        // 14 tokens, residual 4, group 4 → tokens [0, 8) quantized.
        assert_eq!(state.shareable_len(), 8);
        cache.insert(&state, prompt.len());
        assert_eq!(cache.stats().resident_nodes, 1);

        // A prompt diverging at token 6 can only reuse the aligned 4.
        let mut div = prompt[..6].to_vec();
        div.extend([31, 30, 29, 28]);
        let hit = cache.lookup(&div).expect("aligned hit");
        assert_eq!(hit.tokens, 4);
        assert!(hit.bundles[0][0].len().is_multiple_of(q.group));

        // A prompt diverging inside the first group reuses nothing.
        let mut early = prompt[..2].to_vec();
        early.extend([31, 30]);
        assert!(cache.lookup(&early).is_none());
    }
}
