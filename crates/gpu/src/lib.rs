//! A100-class GPU performance model for MicroScopiQ (§6, Table 6, Fig. 13).
//!
//! Models the four execution paths of the paper's GPU evaluation — FP16
//! baseline, Atom W4A4, MicroScopiQ W4A4 with and without kernel
//! optimizations — plus the modified-tensor-core variant (INT+FP co-issue
//! with a variable right shifter). Timing is roofline-style per layer;
//! see module docs in [`kernels`] for each path's cost structure.

pub mod kernels;
pub mod spec;

pub use kernels::{
    gemm_time, normalized_throughput, workload_energy_mj, workload_time, GpuPath, GpuTiming,
    MsGpuParams,
};
pub use spec::GpuSpec;
