//! GPU execution-path models for MicroScopiQ GEMMs (§6, Table 6).
//!
//! Token generation (decode) is modelled roofline-style per layer:
//! `t = max(traffic/BW, MACs/rate) + overheads`, where each path differs in
//! (a) the weight format crossing DRAM, (b) which tensor-core precision
//! executes which tiles, and (c) dequantization / outlier-merge overheads:
//!
//! * **FP16 (TensorRT-LLM)** — 16-bit weights, FP16 tensor cores.
//! * **Atom W4A4** — 4-bit + outlier-channel INT8, INT4/INT8 tensor cores.
//! * **MicroScopiQ no-optim** — outliers merged in shared memory: the
//!   dequantized FP16 weights make a full smem round trip, erasing the
//!   compression win (the paper measures 0.98× of FP16).
//! * **MicroScopiQ optim** — register caching (`shfl_sync`) + dynamic tile
//!   dispatch: inlier-only tiles on INT4 TCs, mixed tiles dequantized.
//! * **MicroScopiQ + modified TC** — INT+FP co-issue with the variable
//!   right shifter (§6.2): no dequantization at all.

use crate::spec::GpuSpec;
use microscopiq_accel::workload::GemmShape;

/// A GPU execution path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GpuPath {
    /// TensorRT-LLM FP16 baseline.
    Fp16Baseline,
    /// Atom W4A4 kernel.
    AtomW4A4,
    /// MicroScopiQ W4A4 without kernel optimizations.
    MsNoOptim,
    /// MicroScopiQ W4A4 with register caching + dynamic dispatch.
    MsOptim,
    /// MicroScopiQ W4A4 on the modified tensor core (simulated).
    MsModifiedTc,
}

impl GpuPath {
    /// Display name as in Table 6.
    pub fn name(&self) -> &'static str {
        match self {
            GpuPath::Fp16Baseline => "TRT-LLM FP16",
            GpuPath::AtomW4A4 => "W4A4 Atom",
            GpuPath::MsNoOptim => "W4A4 MS no-optim.",
            GpuPath::MsOptim => "W4A4 MS optim.",
            GpuPath::MsModifiedTc => "W4A4 MS w/ New MTC",
        }
    }
}

/// Per-layer timing for one path (microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GpuTiming {
    /// DRAM traffic time.
    pub memory_us: f64,
    /// Tensor-core compute time.
    pub compute_us: f64,
    /// Dequantization / merge / launch overheads.
    pub overhead_us: f64,
}

impl GpuTiming {
    /// Total time, with memory and compute overlapped.
    pub fn total_us(&self) -> f64 {
        self.memory_us.max(self.compute_us) + self.overhead_us
    }
}

/// Parameters of a MicroScopiQ-quantized model on the GPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MsGpuParams {
    /// Effective bit width of the packed weights (W4: ≈4.15).
    pub ebw: f64,
    /// Fraction of GEMM tiles containing at least one outlier μB (these
    /// dequantize to FP16 in the unmodified paths).
    pub mixed_tile_fraction: f64,
}

impl Default for MsGpuParams {
    fn default() -> Self {
        Self {
            ebw: 4.15,
            mixed_tile_fraction: 0.35,
        }
    }
}

/// Times one GEMM on the given path.
pub fn gemm_time(shape: &GemmShape, path: GpuPath, spec: &GpuSpec, ms: &MsGpuParams) -> GpuTiming {
    let macs = shape.macs() as f64;
    let weights = shape.weight_elements() as f64;
    let act_bytes = ((shape.k + shape.m) * shape.n * shape.repeats) as f64 * 2.0;
    let bw = spec.hbm_gbps * 1e9 / 1e6; // bytes per microsecond
    let fp16_rate = spec.fp16_tc_tflops * 1e12 / 1e6; // flops per microsecond
    let int4_rate = spec.int4_tc_tops * 1e12 / 1e6;
    let launch = spec.kernel_launch_us * shape.repeats as f64;

    match path {
        GpuPath::Fp16Baseline => GpuTiming {
            memory_us: (weights * 2.0 + act_bytes) / bw,
            compute_us: 2.0 * macs / fp16_rate,
            overhead_us: launch,
        },
        GpuPath::AtomW4A4 => {
            // 4-bit groups + 1/32 channels at INT8 → ≈4.2 bits/element;
            // INT4 TCs with INT32→FP16 accumulation conversion overhead.
            let wbytes = weights * 4.2 / 8.0;
            let convert = 0.12 * wbytes / bw;
            GpuTiming {
                memory_us: (wbytes + act_bytes * 0.5) / bw,
                compute_us: 2.0 * macs / int4_rate,
                overhead_us: launch + convert,
            }
        }
        GpuPath::MsNoOptim => {
            // Outlier merge in shared memory: dequantized FP16 weights make
            // a full store+load round trip through smem, and the GEMM runs
            // at FP16 rate. The effective smem bandwidth factor (3× DRAM,
            // i.e. bank-conflicted merging) is calibrated so this path
            // lands at the paper's measured ≈0.98× of the FP16 baseline.
            let wbytes = weights * ms.ebw / 8.0;
            let smem_roundtrip = weights * 2.0 * 2.0 / (bw * 3.0);
            GpuTiming {
                memory_us: (wbytes + act_bytes * 0.5) / bw,
                compute_us: 2.0 * macs / fp16_rate,
                overhead_us: launch + smem_roundtrip + 0.25 * wbytes / bw,
            }
        }
        GpuPath::MsOptim => {
            // Register caching: no smem trip; inlier tiles on INT4 TCs,
            // mixed tiles dequantized to FP16; shfl_sync per outlier μB.
            let wbytes = weights * ms.ebw / 8.0;
            let f = ms.mixed_tile_fraction;
            let compute = 2.0 * macs * (1.0 - f) / int4_rate + 2.0 * macs * f / fp16_rate;
            let shfl = 0.08 * wbytes / bw;
            GpuTiming {
                memory_us: (wbytes + act_bytes * 0.5) / bw,
                compute_us: compute,
                overhead_us: launch + shfl,
            }
        }
        GpuPath::MsModifiedTc => {
            // INT+FP co-issue: every tile at INT4-TC rate, no dequant.
            let wbytes = weights * ms.ebw / 8.0;
            GpuTiming {
                memory_us: (wbytes + act_bytes * 0.5) / bw,
                compute_us: 2.0 * macs / int4_rate,
                overhead_us: launch,
            }
        }
    }
}

/// Total workload time (microseconds).
pub fn workload_time(
    workload: &[GemmShape],
    path: GpuPath,
    spec: &GpuSpec,
    ms: &MsGpuParams,
) -> f64 {
    workload
        .iter()
        .map(|s| gemm_time(s, path, spec, ms).total_us())
        .sum()
}

/// Token-generation throughput normalized to the FP16 baseline (Table 6).
pub fn normalized_throughput(
    workload: &[GemmShape],
    path: GpuPath,
    spec: &GpuSpec,
    ms: &MsGpuParams,
) -> f64 {
    let base = workload_time(workload, GpuPath::Fp16Baseline, spec, ms);
    base / workload_time(workload, path, spec, ms)
}

/// GPU energy for a workload (millijoules): DRAM traffic + compute at the
/// path's precision + overhead traffic, with published per-op constants.
pub fn workload_energy_mj(
    workload: &[GemmShape],
    path: GpuPath,
    _spec: &GpuSpec,
    ms: &MsGpuParams,
) -> f64 {
    let macs: f64 = workload.iter().map(|g| g.macs() as f64).sum();
    let weights: f64 = workload.iter().map(|g| g.weight_elements() as f64).sum();
    let dram_pj_byte = 31.2;
    let (wbits, mac_pj, extra) = match path {
        GpuPath::Fp16Baseline => (16.0, 0.9, 0.0),
        GpuPath::AtomW4A4 => (4.2, 0.35, 0.05),
        GpuPath::MsNoOptim => (ms.ebw, 0.9, 0.40), // FP16 compute + smem churn
        GpuPath::MsOptim => (ms.ebw, 0.45, 0.10),  // mixed INT4/FP16 + shfl
        GpuPath::MsModifiedTc => (ms.ebw, 0.30, 0.0),
    };
    let dram_mj = weights * wbits / 8.0 * dram_pj_byte * 1e-9;
    let compute_mj = macs * mac_pj * 1e-9;
    (dram_mj + compute_mj) * (1.0 + extra)
}

#[cfg(test)]
mod tests {
    use super::*;
    use microscopiq_accel::workload::{model_workload, Phase};
    use microscopiq_fm::zoo::model;

    fn decode_workload(name: &str) -> Vec<GemmShape> {
        model_workload(&model(name), Phase::Decode)
    }

    #[test]
    fn table6_ordering_holds_for_llama2_13b() {
        let spec = GpuSpec::a100();
        let ms = MsGpuParams::default();
        let wl = decode_workload("LLaMA-2-13B");
        let t = |p| normalized_throughput(&wl, p, &spec, &ms);
        let no_optim = t(GpuPath::MsNoOptim);
        let optim = t(GpuPath::MsOptim);
        let atom = t(GpuPath::AtomW4A4);
        let mtc = t(GpuPath::MsModifiedTc);
        // Paper row: 0.98 < 1.00 ≤ 2.06 ≈ 2.25 < 4.31.
        assert!(no_optim > 0.8 && no_optim < 1.15, "no-optim {no_optim}");
        assert!(optim > 1.5, "optim {optim}");
        assert!(atom > 1.5, "atom {atom}");
        assert!(mtc > optim && mtc > atom, "modified TC {mtc} must lead");
    }

    #[test]
    fn no_optim_loses_its_compression_win() {
        // The smem round trip makes MS-no-optim comparable to FP16 even
        // though its weights are 4× smaller.
        let spec = GpuSpec::a100();
        let ms = MsGpuParams::default();
        let wl = decode_workload("LLaMA-3-8B");
        let r = normalized_throughput(&wl, GpuPath::MsNoOptim, &spec, &ms);
        assert!(r > 0.6 && r < 1.2, "no-optim normalized {r}");
    }

    #[test]
    fn decode_is_memory_bound_on_gpu() {
        let spec = GpuSpec::a100();
        let ms = MsGpuParams::default();
        let wl = decode_workload("LLaMA-2-13B");
        for s in &wl {
            let t = gemm_time(s, GpuPath::Fp16Baseline, &spec, &ms);
            assert!(t.memory_us > t.compute_us, "{}", s.name);
        }
    }

    #[test]
    fn modified_tc_energy_is_lowest_ms_path() {
        let spec = GpuSpec::a100();
        let ms = MsGpuParams::default();
        let wl = decode_workload("LLaMA-2-13B");
        let e = |p| workload_energy_mj(&wl, p, &spec, &ms);
        assert!(e(GpuPath::MsModifiedTc) < e(GpuPath::MsOptim));
        assert!(e(GpuPath::MsOptim) < e(GpuPath::MsNoOptim));
        assert!(e(GpuPath::MsModifiedTc) < e(GpuPath::Fp16Baseline));
    }

    #[test]
    fn path_names_match_table6() {
        assert_eq!(GpuPath::Fp16Baseline.name(), "TRT-LLM FP16");
        assert_eq!(GpuPath::MsModifiedTc.name(), "W4A4 MS w/ New MTC");
    }
}
