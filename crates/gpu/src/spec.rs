//! GPU hardware constants for the A100-class model of §6/§7.6.

/// A100-class GPU specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuSpec {
    /// Streaming multiprocessors.
    pub sms: usize,
    /// HBM bandwidth (GB/s). The paper's iso-bandwidth scenario uses 2 TB/s.
    pub hbm_gbps: f64,
    /// Dense FP16 tensor-core throughput (TFLOPS).
    pub fp16_tc_tflops: f64,
    /// INT8 tensor-core throughput (TOPS).
    pub int8_tc_tops: f64,
    /// INT4 tensor-core throughput (TOPS).
    pub int4_tc_tops: f64,
    /// Total multiplier count (the paper's iso-compute anchor: 55,296).
    pub multipliers: usize,
    /// Per-kernel launch overhead (microseconds).
    pub kernel_launch_us: f64,
}

impl GpuSpec {
    /// The A100 used throughout §7.6.
    pub fn a100() -> Self {
        Self {
            sms: 108,
            hbm_gbps: 2000.0,
            fp16_tc_tflops: 312.0,
            int8_tc_tops: 624.0,
            int4_tc_tops: 1248.0,
            multipliers: 55_296,
            kernel_launch_us: 4.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_rates_are_consistent() {
        let g = GpuSpec::a100();
        // Tensor-core rates double per precision halving.
        assert_eq!(g.int8_tc_tops, g.fp16_tc_tflops * 2.0);
        assert_eq!(g.int4_tc_tops, g.int8_tc_tops * 2.0);
    }
}
