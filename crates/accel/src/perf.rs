//! Analytic performance model for the MicroScopiQ accelerator (§5, §7.5).
//!
//! Latency per GEMM combines: weight-stationary tiling over the PE array
//! (2-bit mode packs two output channels per PE column, doubling effective
//! columns), pipeline fill/drain, double-buffered weight fetch from HBM2
//! through the L2/OCP path, and ReCoN contention. ReCoN demand follows the
//! direct-wire observation of Fig. 15: only outlier-bearing μB column
//! groups detour through the NoC, so expected demand per cycle is
//! `rows · x` full-width accesses against `units` capacity; contention is
//! evaluated from the Binomial occupancy distribution (the Fig. 16(b)
//! conflict metric) and stalls throttle streaming when demand exceeds
//! capacity (the controller's handshake backpressure, §5.2).

use crate::workload::GemmShape;

/// MicroScopiQ accelerator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccelConfig {
    /// PE rows.
    pub rows: usize,
    /// PE columns.
    pub cols: usize,
    /// Time-multiplexed ReCoN units.
    pub recon_units: usize,
    /// Per-element bit budget (2 or 4).
    pub bb: u32,
    /// Micro-block size mapped across a PE row.
    pub micro_block: usize,
    /// Clock (GHz).
    pub freq_ghz: f64,
    /// Off-chip bandwidth (GB/s), HBM2 per §5.1.
    pub hbm_gbps: f64,
    /// L2→buffer bandwidth (GB/s), OCP-SRAM interface per §5.1.
    pub sram_gbps: f64,
}

impl AccelConfig {
    /// The paper's 64×64 design at 1 GHz.
    pub fn paper_64x64(bb: u32, recon_units: usize) -> Self {
        Self {
            rows: 64,
            cols: 64,
            recon_units,
            bb,
            micro_block: 8,
            freq_ghz: 1.0,
            hbm_gbps: 256.0,
            sram_gbps: 64.0,
        }
    }

    /// Effective output columns per pass (2-bit mode packs two weights that
    /// share an iAct into one PE, §5.3).
    pub fn effective_cols(&self) -> usize {
        if self.bb == 2 {
            self.cols * 2
        } else {
            self.cols
        }
    }

    /// Peak MACs per cycle.
    pub fn peak_macs_per_cycle(&self) -> usize {
        self.rows * self.effective_cols()
    }

    /// Peak throughput in TOPS (2 ops per MAC).
    pub fn peak_tops(&self) -> f64 {
        self.peak_macs_per_cycle() as f64 * 2.0 * self.freq_ghz / 1000.0
    }
}

/// Latency breakdown for one workload.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencyBreakdown {
    /// Compute-bound cycles (including fill/drain).
    pub compute_cycles: f64,
    /// Memory-bound cycles (weight + activation traffic, overlapped).
    pub memory_cycles: f64,
    /// Extra cycles lost to ReCoN contention.
    pub recon_stall_cycles: f64,
    /// Final latency in cycles (max of compute/memory per tile + stalls).
    pub total_cycles: f64,
    /// Achieved / peak MAC utilization.
    pub utilization: f64,
    /// Fraction of ReCoN accesses that conflicted (Fig. 16(b) metric).
    pub conflict_fraction: f64,
}

impl LatencyBreakdown {
    /// Latency in milliseconds at the given clock.
    pub fn ms(&self, freq_ghz: f64) -> f64 {
        self.total_cycles / (freq_ghz * 1e9) * 1e3
    }
}

/// Binomial-occupancy ReCoN conflict model: with `rows` independent
/// requesters each active with probability `x` per cycle and `units`
/// single-cycle servers, returns `(conflict_fraction, stall_factor)`.
///
/// `conflict_fraction` = E[max(0, r − units)] / E[r] (share of accesses
/// that must wait); `stall_factor` = max(1, E[r]/units) (sustained
/// throughput throttle when oversubscribed).
pub fn recon_contention(rows: usize, x: f64, units: usize) -> (f64, f64) {
    assert!(units >= 1, "at least one ReCoN unit");
    let x = x.clamp(0.0, 1.0);
    let n = rows;
    let mean = n as f64 * x;
    if mean == 0.0 {
        return (0.0, 1.0);
    }
    // Binomial pmf walk (n ≤ 128 in practice).
    let mut pmf = vec![0.0f64; n + 1];
    let mut log_c = 0.0f64; // log C(n, k)
    for (k, p) in pmf.iter_mut().enumerate() {
        if k > 0 {
            log_c += ((n - k + 1) as f64).ln() - (k as f64).ln();
        }
        let logp = log_c + k as f64 * x.ln() + (n - k) as f64 * (1.0 - x).max(1e-300).ln();
        *p = logp.exp();
    }
    let excess: f64 = pmf
        .iter()
        .enumerate()
        .map(|(k, p)| p * (k as f64 - units as f64).max(0.0))
        .sum();
    let conflict_fraction = (excess / mean).clamp(0.0, 1.0);
    // Sustained throttle when oversubscribed, plus a sub-saturation
    // waiting penalty for conflicting accesses (sync-buffer N−1 latency).
    let stall_factor = (mean / units as f64).max(1.0) + 0.3 * conflict_fraction;
    (conflict_fraction, stall_factor)
}

/// Computes latency for one GEMM shape.
///
/// `ebw` is the effective bit width of the weight tensor (drives off-chip
/// traffic) and `outlier_mb_fraction` the share of μBs with outliers
/// (drives ReCoN demand).
pub fn gemm_latency(
    shape: &GemmShape,
    cfg: &AccelConfig,
    ebw: f64,
    outlier_mb_fraction: f64,
) -> LatencyBreakdown {
    let col_eff = cfg.effective_cols();
    let row_tiles = shape.k.div_ceil(cfg.rows);
    let col_tiles = shape.m.div_ceil(col_eff);
    let tiles = (row_tiles * col_tiles) as f64;

    // Streaming: one iAct wave per batch column. Pipeline fill/drain is
    // paid once per shape — tiles are double-buffered back to back.
    let stream = shape.n as f64;
    let fill = (cfg.rows + cfg.cols) as f64;

    // ReCoN contention (§7.8): a row requests the NoC when one of its
    // outlier μBs' psums crosses to the next row; amortized over the
    // cols/Bμ μB groups a row holds, the per-row per-cycle request
    // probability is x·Bμ/cols. The column-wise arbiters serialize
    // simultaneous requesters (sync-buffer N−1 penalty, §5.4).
    let mbs_per_row = (cfg.cols / cfg.micro_block).max(1) as f64;
    let request_p = (outlier_mb_fraction / mbs_per_row).clamp(0.0, 1.0);
    let (conflict_fraction, stall_factor) = recon_contention(cfg.rows, request_p, cfg.recon_units);
    let compute_per_tile = stream * stall_factor;

    // Weight fetch per tile (double buffered against compute): EBW bits per
    // element over the HBM2 + OCP-SRAM path (the slower stage bounds).
    let bytes_per_cycle = cfg.hbm_gbps.min(cfg.sram_gbps * 4.0) / cfg.freq_ghz; // GB/s ÷ Gcycle/s
    let tile_weight_bytes = (cfg.rows * col_eff) as f64 * ebw / 8.0;
    let mem_per_tile = tile_weight_bytes / bytes_per_cycle;

    let per_tile = compute_per_tile.max(mem_per_tile);
    let total = (tiles * per_tile + fill) * shape.repeats as f64;

    let ideal_macs = shape.macs() as f64;
    let utilization = (ideal_macs / (total * cfg.peak_macs_per_cycle() as f64)).min(1.0);

    LatencyBreakdown {
        compute_cycles: (tiles * compute_per_tile + fill) * shape.repeats as f64,
        memory_cycles: tiles * mem_per_tile * shape.repeats as f64,
        recon_stall_cycles: tiles * stream * (stall_factor - 1.0) * shape.repeats as f64,
        total_cycles: total,
        utilization,
        conflict_fraction,
    }
}

/// Latency for a whole workload (sum over shapes).
pub fn workload_latency(
    workload: &[GemmShape],
    cfg: &AccelConfig,
    ebw: f64,
    outlier_mb_fraction: f64,
) -> LatencyBreakdown {
    let mut total = LatencyBreakdown::default();
    let mut macs = 0f64;
    let mut conflict_acc = 0.0;
    for shape in workload {
        let l = gemm_latency(shape, cfg, ebw, outlier_mb_fraction);
        total.compute_cycles += l.compute_cycles;
        total.memory_cycles += l.memory_cycles;
        total.recon_stall_cycles += l.recon_stall_cycles;
        total.total_cycles += l.total_cycles;
        conflict_acc += l.conflict_fraction * l.total_cycles;
        macs += shape.macs() as f64;
    }
    total.utilization = (macs / (total.total_cycles * cfg.peak_macs_per_cycle() as f64)).min(1.0);
    total.conflict_fraction = if total.total_cycles > 0.0 {
        conflict_acc / total.total_cycles
    } else {
        0.0
    };
    total
}

/// Effective throughput in TOPS for a workload.
pub fn effective_tops(
    workload: &[GemmShape],
    cfg: &AccelConfig,
    latency: &LatencyBreakdown,
) -> f64 {
    let macs: f64 = workload.iter().map(|g| g.macs() as f64).sum();
    let seconds = latency.total_cycles / (cfg.freq_ghz * 1e9);
    2.0 * macs / seconds / 1e12
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(m: usize, k: usize, n: usize) -> GemmShape {
        GemmShape {
            name: "test".to_string(),
            m,
            k,
            n,
            repeats: 1,
        }
    }

    #[test]
    fn two_bit_mode_doubles_effective_columns() {
        let c2 = AccelConfig::paper_64x64(2, 1);
        let c4 = AccelConfig::paper_64x64(4, 1);
        assert_eq!(c2.effective_cols(), 128);
        assert_eq!(c4.effective_cols(), 64);
        assert!(c2.peak_tops() > c4.peak_tops() * 1.9);
    }

    #[test]
    fn two_bit_mode_is_faster_on_compute_bound_gemm() {
        let s = shape(4096, 4096, 512);
        let l2 = gemm_latency(&s, &AccelConfig::paper_64x64(2, 8), 2.4, 0.0);
        let l4 = gemm_latency(&s, &AccelConfig::paper_64x64(4, 8), 4.4, 0.0);
        assert!(
            l2.total_cycles < l4.total_cycles * 0.6,
            "2-bit {} vs 4-bit {}",
            l2.total_cycles,
            l4.total_cycles
        );
    }

    #[test]
    fn decode_is_memory_bound() {
        let s = shape(4096, 4096, 1);
        let l = gemm_latency(&s, &AccelConfig::paper_64x64(2, 1), 2.4, 0.02);
        assert!(l.memory_cycles > l.compute_cycles);
    }

    #[test]
    fn conflicts_decrease_with_more_units() {
        let mut last = f64::INFINITY;
        for units in [1usize, 2, 4, 8] {
            let (c, _) = recon_contention(64, 0.05, units);
            assert!(c <= last, "units {units}: {c} vs {last}");
            last = c;
        }
        // With 8 units, conflicts are essentially gone (Fig. 16(b)).
        let (c8, _) = recon_contention(64, 0.05, 8);
        assert!(c8 < 0.01, "8-unit conflicts {c8}");
    }

    #[test]
    fn no_outliers_no_stall() {
        let (c, s) = recon_contention(64, 0.0, 1);
        assert_eq!(c, 0.0);
        assert_eq!(s, 1.0);
    }

    #[test]
    fn oversubscription_throttles() {
        let (_, s) = recon_contention(64, 0.05, 1); // mean demand 3.2 rows
        assert!(s > 3.0 && s < 3.6, "stall factor {s}");
        let (_, s8) = recon_contention(64, 0.05, 8);
        assert!(s8 < 1.01, "8-unit stall {s8}");
    }

    #[test]
    fn latency_improves_then_saturates_with_recon_units() {
        // LLaMA-3-8B-class occupancy: ~13% of μBs carry outliers.
        let s = shape(4096, 4096, 512);
        let lat =
            |units| gemm_latency(&s, &AccelConfig::paper_64x64(2, units), 2.4, 0.135).total_cycles;
        let l1 = lat(1);
        let l2 = lat(2);
        let l4 = lat(4);
        let l8 = lat(8);
        assert!(l1 > l2 && l2 > l4, "monotone improvement: {l1} {l2} {l4}");
        // Saturation: 4 → 8 gains little once demand < capacity (Fig. 18a).
        assert!((l4 - l8) / l4 < 0.05, "l4 {l4} l8 {l8}");
        // Overall 1 → 8 improvement in the ballpark of the paper's 21%.
        let gain = (l1 - l8) / l1;
        assert!(gain > 0.05 && gain < 0.35, "1→8 unit gain {gain}");
    }

    #[test]
    fn utilization_bounded() {
        let s = shape(1000, 1000, 100);
        let l = gemm_latency(&s, &AccelConfig::paper_64x64(4, 8), 4.2, 0.03);
        assert!(l.utilization > 0.0 && l.utilization <= 1.0);
    }

    #[test]
    fn higher_ebw_costs_memory_cycles() {
        let s = shape(4096, 4096, 1);
        let cheap = gemm_latency(&s, &AccelConfig::paper_64x64(4, 8), 4.0, 0.0);
        let costly = gemm_latency(&s, &AccelConfig::paper_64x64(4, 8), 16.0, 0.0);
        assert!(costly.memory_cycles > cheap.memory_cycles * 3.5);
    }
}
