//! Area model (Table 5, Fig. 17, Fig. 18): component areas at TSMC-7nm
//! seeded with the paper's published per-unit values, composed across array
//! scales and ReCoN replication.

/// One synthesized component: per-unit area and instance count.
#[derive(Debug, Clone, PartialEq)]
pub struct Component {
    /// Component name as in Table 5.
    pub name: &'static str,
    /// Area per unit (μm²).
    pub unit_um2: f64,
    /// Instance count.
    pub count: usize,
}

impl Component {
    /// Total area (μm²).
    pub fn total_um2(&self) -> f64 {
        self.unit_um2 * self.count as f64
    }
}

/// A compute-area breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaBreakdown {
    /// Design name.
    pub name: &'static str,
    /// Components.
    pub components: Vec<Component>,
}

impl AreaBreakdown {
    /// Total compute area (mm²).
    pub fn total_mm2(&self) -> f64 {
        self.components.iter().map(|c| c.total_um2()).sum::<f64>() / 1e6
    }

    /// Outlier-handling overhead: the share of compute area spent on
    /// machinery beyond the base PEs and control (Table 5's "compute
    /// overhead" column).
    pub fn outlier_overhead_fraction(&self) -> f64 {
        let overhead: f64 = self
            .components
            .iter()
            .filter(|c| {
                matches!(
                    c.name,
                    "recon"
                        | "sync_buffer"
                        | "multi_precision"
                        | "decoder_4b"
                        | "decoder_8b"
                        | "outlier_pe"
                )
            })
            .map(|c| c.total_um2())
            .sum();
        overhead / (self.total_mm2() * 1e6)
    }
}

/// Per-unit areas from Table 5 (μm², TSMC 7 nm).
pub mod table5 {
    /// MicroScopiQ ReCoN unit (64-wide).
    pub const RECON_UNIT: f64 = 204.68;
    /// MicroScopiQ synchronization buffer.
    pub const SYNC_BUFFER: f64 = 20.45;
    /// MicroScopiQ base PE.
    pub const MS_BASE_PE: f64 = 2.82;
    /// MicroScopiQ per-PE multi-precision support.
    pub const MS_MULTI_PRECISION: f64 = 0.22;
    /// MicroScopiQ controller.
    pub const MS_CONTROL: f64 = 105.78;
    /// OliVe 4-bit decoder.
    pub const OLIVE_DEC4: f64 = 1.86;
    /// OliVe 8-bit decoder.
    pub const OLIVE_DEC8: f64 = 2.47;
    /// OliVe base PE.
    pub const OLIVE_BASE_PE: f64 = 2.51;
    /// OliVe multi-precision support unit.
    pub const OLIVE_MULTI_PRECISION: f64 = 0.68;
    /// OliVe controller.
    pub const OLIVE_CONTROL: f64 = 95.49;
    /// GOBO group PE.
    pub const GOBO_GROUP_PE: f64 = 36.56;
    /// GOBO outlier PE.
    pub const GOBO_OUTLIER_PE: f64 = 96.42;
    /// GOBO control unit.
    pub const GOBO_CONTROL: f64 = 115.36;
}

/// MicroScopiQ compute-area breakdown for an `rows×cols` array with the
/// given number of ReCoN units. ReCoN area scales with network width
/// (`n(log2 n + 1)` switches; the Table 5 value characterizes a 64-wide
/// unit).
pub fn microscopiq_area(rows: usize, cols: usize, recon_units: usize) -> AreaBreakdown {
    let pes = rows * cols;
    let recon_scale = {
        let switches = |n: f64| n * (n.log2() + 1.0);
        switches(cols as f64) / switches(64.0)
    };
    AreaBreakdown {
        name: "MicroScopiQ",
        components: vec![
            Component {
                name: "recon",
                unit_um2: table5::RECON_UNIT * recon_scale,
                count: recon_units,
            },
            Component {
                name: "sync_buffer",
                unit_um2: table5::SYNC_BUFFER * cols as f64 / 64.0,
                count: recon_units,
            },
            Component {
                name: "base_pe",
                unit_um2: table5::MS_BASE_PE,
                count: pes,
            },
            Component {
                name: "multi_precision",
                unit_um2: table5::MS_MULTI_PRECISION,
                count: pes,
            },
            Component {
                name: "control",
                unit_um2: table5::MS_CONTROL,
                count: 1,
            },
        ],
    }
}

/// OliVe compute-area breakdown (decoders scale with array edge).
pub fn olive_area(rows: usize, cols: usize) -> AreaBreakdown {
    let pes = rows * cols;
    AreaBreakdown {
        name: "OliVe",
        components: vec![
            Component {
                name: "decoder_4b",
                unit_um2: table5::OLIVE_DEC4,
                count: 2 * cols,
            },
            Component {
                name: "decoder_8b",
                unit_um2: table5::OLIVE_DEC8,
                count: rows,
            },
            Component {
                name: "base_pe",
                unit_um2: table5::OLIVE_BASE_PE,
                count: pes,
            },
            Component {
                name: "multi_precision",
                unit_um2: table5::OLIVE_MULTI_PRECISION,
                count: pes / 4,
            },
            Component {
                name: "control",
                unit_um2: table5::OLIVE_CONTROL,
                count: 1,
            },
        ],
    }
}

/// GOBO compute-area breakdown. The printed Table 5 total (0.216 mm²)
/// exceeds the sum of its listed components; the residual is carried as an
/// explicit `uncharacterized` entry so the totals match the paper.
pub fn gobo_area(rows: usize, cols: usize) -> AreaBreakdown {
    let pes = rows * cols;
    let listed = table5::GOBO_GROUP_PE * pes as f64
        + table5::GOBO_OUTLIER_PE * rows as f64
        + table5::GOBO_CONTROL;
    // Residual fraction derived from the 64×64 printed total.
    let residual_fraction = (0.216e6
        - (table5::GOBO_GROUP_PE * 4096.0 + table5::GOBO_OUTLIER_PE * 64.0 + table5::GOBO_CONTROL))
        / 0.216e6;
    let residual = listed * residual_fraction / (1.0 - residual_fraction);
    AreaBreakdown {
        name: "GOBO",
        components: vec![
            Component {
                name: "group_pe",
                unit_um2: table5::GOBO_GROUP_PE,
                count: pes,
            },
            Component {
                name: "outlier_pe",
                unit_um2: table5::GOBO_OUTLIER_PE,
                count: rows,
            },
            Component {
                name: "control",
                unit_um2: table5::GOBO_CONTROL,
                count: 1,
            },
            Component {
                name: "uncharacterized",
                unit_um2: residual,
                count: 1,
            },
        ],
    }
}

/// On-chip buffer area for an array scale (§7.9: 16 kB iAct + 16 kB oAct +
/// 32 kB weight at 8×8, scaled linearly with the array edge), at a 7 nm
/// SRAM density of ≈0.25 mm²/MB.
pub fn buffer_area_mm2(rows: usize) -> f64 {
    let scale = rows as f64 / 8.0;
    let kb = (16.0 + 16.0 + 32.0) * scale;
    kb / 1024.0 * 0.25
}

/// Total on-chip area (compute + buffers + 2 MB L2).
pub fn total_area_mm2(compute: &AreaBreakdown, rows: usize) -> f64 {
    compute.total_mm2() + buffer_area_mm2(rows) + 2.0 * 0.25
}

/// NoC-based accelerator integration overhead (Fig. 18(b)): adding ReCoN
/// functionality to an existing NoC plus MicroScopiQ PE modifications.
///
/// Returns `(base_pe_frac, base_noc_frac, with_ms_area_ratio)`.
pub fn noc_integration(design: &str) -> (f64, f64, f64) {
    // (PE share, NoC share) of compute area in the baseline design, and the
    // relative area after integrating ReCoN ops + PE changes. ReCoN merge
    // logic adds ~22% to NoC switches; PE shift/select adds ~0.9% to PEs.
    let (pe, noc) = match design {
        "MTIA-like" => (0.901, 0.099),
        "Eyeriss-v2-like" => (0.956, 0.044),
        other => panic!("unknown NoC design '{other}'"),
    };
    let with_ms = pe * 1.009 + noc * 1.22;
    (pe, noc, with_ms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_microscopiq_total_matches_paper() {
        let a = microscopiq_area(64, 64, 1);
        // Paper: 0.012 mm².
        assert!(
            (a.total_mm2() - 0.012).abs() < 0.002,
            "MS area {}",
            a.total_mm2()
        );
    }

    #[test]
    fn table5_olive_total_matches_paper() {
        let a = olive_area(64, 64);
        // Paper: 0.011 mm².
        assert!(
            (a.total_mm2() - 0.011).abs() < 0.002,
            "OliVe {}",
            a.total_mm2()
        );
    }

    #[test]
    fn table5_gobo_total_matches_paper() {
        let a = gobo_area(64, 64);
        assert!(
            (a.total_mm2() - 0.216).abs() < 0.01,
            "GOBO {}",
            a.total_mm2()
        );
    }

    #[test]
    fn overhead_ordering_matches_table5() {
        // MicroScopiQ 8.63% < OliVe 9.90%; GOBO lowest (big PEs dominate).
        let ms = microscopiq_area(64, 64, 1).outlier_overhead_fraction();
        let ol = olive_area(64, 64).outlier_overhead_fraction();
        let gb = gobo_area(64, 64).outlier_overhead_fraction();
        assert!(ms < ol, "MS {ms} vs OliVe {ol}");
        assert!(gb < ms, "GOBO {gb} vs MS {ms}");
        assert!((ms - 0.0863).abs() < 0.02, "MS overhead {ms}");
    }

    #[test]
    fn recon_units_trade_area() {
        let a1 = microscopiq_area(64, 64, 1).total_mm2();
        let a8 = microscopiq_area(64, 64, 8).total_mm2();
        // Fig. 18(a): 8 units ≈ 1.58× compute area.
        let ratio = a8 / a1;
        assert!(ratio > 1.1 && ratio < 1.7, "8-unit area ratio {ratio}");
    }

    #[test]
    fn recon_share_shrinks_at_scale() {
        // §7.9: at 128×128 a single ReCoN is ~3% of compute area.
        let a = microscopiq_area(128, 128, 1);
        let recon: f64 = a
            .components
            .iter()
            .filter(|c| c.name == "recon" || c.name == "sync_buffer")
            .map(|c| c.total_um2())
            .sum();
        let share = recon / (a.total_mm2() * 1e6);
        assert!(share < 0.05, "ReCoN share at 128×128 = {share}");
    }

    #[test]
    fn buffers_scale_linearly() {
        assert!((buffer_area_mm2(16) / buffer_area_mm2(8) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn noc_integration_overheads_match_fig18b() {
        let (_, _, mtia) = noc_integration("MTIA-like");
        let (_, _, eyeriss) = noc_integration("Eyeriss-v2-like");
        assert!((mtia - 1.03).abs() < 0.005, "MTIA ratio {mtia}");
        assert!((eyeriss - 1.023).abs() < 0.005, "Eyeriss ratio {eyeriss}");
    }

    #[test]
    #[should_panic(expected = "unknown NoC design")]
    fn unknown_noc_design_panics() {
        let _ = noc_integration("TPU");
    }
}
