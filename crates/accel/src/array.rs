//! Functional weight-stationary array execution of a MicroScopiQ-packed
//! GEMM (§5.1, §5.6).
//!
//! The executor reproduces the datapath semantics exactly — multi-precision
//! INT PEs (module [`crate::pe`]), per-row ReCoN merges
//! (module [`crate::recon`]), scale alignment through the PE shift port
//! (§5.5) — using a shared fixed-point accumulator, and is validated
//! bit-exactly against `PackedLayer::dequantize() · X`. Cycle/latency
//! accounting lives in [`crate::perf`]; this module counts the events the
//! performance and energy models consume (ReCoN accesses, switch ops,
//! MACs).
//!
//! The packed layer must use `GroupAxis::OutputChannel` so that one μB maps
//! across one PE row, as in Fig. 6/8 (DESIGN.md §2).

use crate::recon::{ColumnInput, ReCoN};
use microscopiq_core::config::GroupAxis;
use microscopiq_core::microblock::PermEntry;
use microscopiq_core::packed::PackedLayer;
use microscopiq_linalg::Matrix;
use microscopiq_mx::halves::unpack_sign_mag;
use microscopiq_mx::scale::Pow2Scale;

/// Quantized input activations: integer codes with one shared
/// power-of-two scale.
#[derive(Debug, Clone)]
pub struct QuantizedActs {
    /// Codes, `d_col × batch`, each in `[-127, 127]`.
    pub codes: Matrix,
    /// Shared scale `2^xsf`.
    pub scale: Pow2Scale,
}

impl QuantizedActs {
    /// Quantizes activations to INT8 with a per-tensor power-of-two scale.
    pub fn from_f64(x: &Matrix) -> Self {
        let scale = Pow2Scale::from_max(x.max_abs(), 127.0);
        let codes = Matrix::from_fn(x.rows(), x.cols(), |r, c| {
            scale.apply(x[(r, c)]).round().clamp(-127.0, 127.0)
        });
        Self { codes, scale }
    }

    /// The dequantized activations the reference GEMM should use.
    pub fn dequantize(&self) -> Matrix {
        let mut x = self.codes.clone();
        x.scale(self.scale.value());
        x
    }
}

/// Event counters from a functional execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecutionCounters {
    /// Integer MAC operations performed.
    pub macs: usize,
    /// Row-waves that required ReCoN (accesses).
    pub recon_accesses: usize,
    /// Total row-waves processed.
    pub total_waves: usize,
    /// ReCoN switch operations.
    pub switch_ops: usize,
    /// Merge operations (outlier partial sums reconstructed).
    pub merges: usize,
}

/// Result of executing a GEMM on the functional array.
#[derive(Debug, Clone)]
pub struct GemmExecution {
    /// Output activations `Y = W·X` (`d_row × batch`), real-valued.
    pub outputs: Matrix,
    /// Event counters.
    pub counters: ExecutionCounters,
}

/// Executes `Y = W · X` where `W` is the packed layer and `X` the quantized
/// activations.
///
/// # Panics
///
/// Panics if the layer is not `OutputChannel`-packed, or shapes mismatch.
pub fn execute_gemm(packed: &PackedLayer, acts: &QuantizedActs) -> GemmExecution {
    assert_eq!(
        packed.axis(),
        GroupAxis::OutputChannel,
        "hardware mapping requires OutputChannel packing (DESIGN.md §2)"
    );
    assert_eq!(
        acts.codes.rows(),
        packed.d_col(),
        "activation shape mismatch"
    );
    let d_row = packed.d_row();
    let d_col = packed.d_col();
    let batch = acts.codes.cols();
    let bb = packed.inlier_bits();
    let fmt = packed.outlier_format();
    let mb = fmt.mantissa_bits();
    let mabs_per_line = d_row.div_ceil(packed.macro_block());

    // Common accumulator exponent: every contribution is an integer times
    // 2^(exp). Inliers: isf + xsf − 0; outliers: (mxtotal − isf) + xsf − mb
    // (the merged value carries mb fractional bits).
    let xsf = acts.scale.exponent();
    let mut e_min = i32::MAX;
    for g in packed.groups() {
        e_min = e_min.min(g.isf.exponent() + xsf);
        for mbk in &g.micro_blocks {
            if let Some(meta) = &mbk.meta {
                e_min =
                    e_min.min(meta.mxscale.total_exponent() - g.isf.exponent() + xsf - mb as i32);
            }
        }
    }
    if e_min == i32::MAX {
        e_min = xsf;
    }

    let mut acc = vec![vec![0i128; batch]; d_row];
    let mut counters = ExecutionCounters::default();
    let recon = ReCoN::new(packed.micro_block().next_power_of_two().max(2));

    // Walk line by line (line = input index k; its groups span output
    // channels — each μB maps across one PE row).
    for k in 0..d_col {
        for mab in 0..mabs_per_line {
            let group = &packed.groups()[k * mabs_per_line + mab];
            let isf = group.isf.exponent();
            let mut offset = mab * packed.macro_block();
            for mbk in &group.micro_blocks {
                let n = mbk.codes.len();
                match &mbk.meta {
                    None => {
                        // Pure inlier μB: straight PE-row MACs.
                        let shift = (isf + xsf - e_min) as u32;
                        #[allow(clippy::needless_range_loop)] // b indexes acts and acc together
                        for b in 0..batch {
                            let x = acts.codes[(k, b)] as i128;
                            for (i, &code) in mbk.codes.iter().enumerate() {
                                let sh = 8 - bb;
                                let w = ((code << sh) as i8 >> sh) as i128;
                                counters.macs += 1;
                                acc[offset + i][b] += (w * x) << shift;
                            }
                            counters.total_waves += 1;
                        }
                    }
                    Some(meta) => {
                        // Outlier-bearing μB: route every wave through ReCoN.
                        let out_exp = meta.mxscale.total_exponent() - isf;
                        let in_shift = (isf + xsf - e_min) as u32;
                        let out_shift = (out_exp + xsf - mb as i32 - e_min) as u32;
                        // μB-relative perm entries are already relative.
                        let entries: Vec<PermEntry> = meta.perm.entries().to_vec();
                        let is_outlier_col: Vec<bool> = {
                            let mut v = vec![false; n];
                            for e in &entries {
                                v[e.upper_loc as usize] = true;
                                v[e.lower_loc as usize] = true;
                            }
                            v
                        };
                        #[allow(clippy::needless_range_loop)] // b indexes acts and acc together
                        for b in 0..batch {
                            let x = acts.codes[(k, b)] as i64;
                            let mut inputs = Vec::with_capacity(recon.width());
                            for (i, &code) in mbk.codes.iter().enumerate() {
                                counters.macs += 1;
                                if is_outlier_col[i] {
                                    let half = unpack_sign_mag(code, bb) as i64;
                                    inputs.push(ColumnInput::Offload {
                                        res: half * x,
                                        iacc: 0,
                                    });
                                } else {
                                    let sh = 8 - bb;
                                    let w = ((code << sh) as i8 >> sh) as i64;
                                    inputs.push(ColumnInput::Psum((w * x) << mb));
                                }
                            }
                            // Pad to the network width.
                            while inputs.len() < recon.width() {
                                inputs.push(ColumnInput::Psum(0));
                            }
                            let signed_iacts: Vec<i64> = entries
                                .iter()
                                .map(|e| {
                                    let sign_bit =
                                        (mbk.codes[e.upper_loc as usize] >> (bb - 1)) & 1;
                                    if sign_bit == 1 {
                                        -x
                                    } else {
                                        x
                                    }
                                })
                                .collect();
                            let routed = recon.route(&inputs, &entries, &signed_iacts, mb);
                            counters.recon_accesses += 1;
                            counters.total_waves += 1;
                            counters.switch_ops += routed.switch_ops;
                            counters.merges += routed.merges;
                            for (i, &v) in routed.outputs.iter().take(n).enumerate() {
                                // Each column keeps its own scale on the way
                                // out: merged outlier columns carry mb
                                // fractional bits at exponent out_exp − mb;
                                // inlier columns round-trip their ≪ mb
                                // pre-shift losslessly.
                                let (val, shift) = if is_outlier_col[i] {
                                    (v as i128, out_shift)
                                } else {
                                    ((v >> mb) as i128, in_shift)
                                };
                                acc[offset + i][b] += val << shift;
                            }
                        }
                    }
                }
                offset += n;
            }
        }
    }

    let scale = (e_min as f64).exp2();
    let outputs = Matrix::from_fn(d_row, batch, |r, b| acc[r][b] as f64 * scale);
    GemmExecution { outputs, counters }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microscopiq_core::config::QuantConfig;
    use microscopiq_core::solver::solve;
    use microscopiq_core::traits::LayerTensors;
    use microscopiq_linalg::SeededRng;

    fn packed_layer(
        d_row: usize,
        d_col: usize,
        bits: u32,
        seed: u64,
    ) -> (LayerTensors, PackedLayer) {
        let mut rng = SeededRng::new(seed);
        let mut w = Matrix::from_fn(d_row, d_col, |_, _| rng.normal(0.0, 0.02));
        let n_out = (d_row * d_col) / 40;
        for _ in 0..n_out {
            let r = rng.below(d_row);
            let c = rng.below(d_col);
            w[(r, c)] = rng.sign() * rng.uniform_range(0.15, 0.4);
        }
        let x = Matrix::from_fn(d_col, d_col + 8, |_, _| rng.normal(0.0, 1.0));
        let layer = LayerTensors::new(w, x).unwrap();
        let cfg = QuantConfig::builder(bits)
            .macro_block(16)
            .row_block(16)
            .group_axis(GroupAxis::OutputChannel)
            .build()
            .unwrap();
        let out = solve(&layer, &cfg).unwrap();
        (layer, out.packed.unwrap())
    }

    #[test]
    fn functional_gemm_matches_dequantized_reference_w2() {
        let (_layer, packed) = packed_layer(16, 24, 2, 1);
        let mut rng = SeededRng::new(2);
        let x = Matrix::from_fn(24, 5, |_, _| rng.normal(0.0, 1.0));
        let acts = QuantizedActs::from_f64(&x);
        let exec = execute_gemm(&packed, &acts);
        let reference = packed.dequantize().matmul(&acts.dequantize());
        let err = exec.outputs.frobenius_distance(&reference);
        assert!(err < 1e-9, "functional GEMM diverges: {err}");
        assert!(exec.counters.merges > 0, "test layer should exercise ReCoN");
    }

    #[test]
    fn functional_gemm_matches_dequantized_reference_w4() {
        let (_layer, packed) = packed_layer(16, 24, 4, 3);
        let mut rng = SeededRng::new(4);
        let x = Matrix::from_fn(24, 3, |_, _| rng.normal(0.0, 0.5));
        let acts = QuantizedActs::from_f64(&x);
        let exec = execute_gemm(&packed, &acts);
        let reference = packed.dequantize().matmul(&acts.dequantize());
        assert!(exec.outputs.frobenius_distance(&reference) < 1e-9);
    }

    #[test]
    fn recon_access_fraction_tracks_outlier_occupancy() {
        let (_layer, packed) = packed_layer(32, 32, 2, 5);
        let mut rng = SeededRng::new(6);
        let x = Matrix::from_fn(32, 4, |_, _| rng.normal(0.0, 1.0));
        let acts = QuantizedActs::from_f64(&x);
        let exec = execute_gemm(&packed, &acts);
        let access_frac = exec.counters.recon_accesses as f64 / exec.counters.total_waves as f64;
        let mb_frac = packed.outlier_micro_block_fraction();
        assert!(
            (access_frac - mb_frac).abs() < 1e-9,
            "access {access_frac} vs μB occupancy {mb_frac}"
        );
    }

    #[test]
    fn mac_count_is_full_gemm() {
        let (_layer, packed) = packed_layer(8, 16, 2, 7);
        let mut rng = SeededRng::new(8);
        let x = Matrix::from_fn(16, 3, |_, _| rng.normal(0.0, 1.0));
        let acts = QuantizedActs::from_f64(&x);
        let exec = execute_gemm(&packed, &acts);
        assert_eq!(exec.counters.macs, 8 * 16 * 3);
    }

    #[test]
    fn clean_tensor_never_touches_recon() {
        // No outliers → no ReCoN accesses at all.
        let mut rng = SeededRng::new(9);
        let w = Matrix::from_fn(16, 16, |_, _| rng.normal(0.0, 0.02));
        let x = Matrix::from_fn(16, 24, |_, _| rng.normal(0.0, 1.0));
        let layer = LayerTensors::new(w, x).unwrap();
        let cfg = QuantConfig::w2()
            .macro_block(16)
            .row_block(16)
            .group_axis(GroupAxis::OutputChannel)
            .sigma_threshold(50.0) // nothing qualifies
            .build()
            .unwrap();
        let packed = solve(&layer, &cfg).unwrap().packed.unwrap();
        let acts = QuantizedActs::from_f64(&Matrix::from_fn(16, 2, |_, _| rng.normal(0.0, 1.0)));
        let exec = execute_gemm(&packed, &acts);
        assert_eq!(exec.counters.recon_accesses, 0);
        let reference = packed.dequantize().matmul(&acts.dequantize());
        assert!(exec.outputs.frobenius_distance(&reference) < 1e-9);
    }
}
