//! The multi-precision INT processing element (§5.3, Fig. 7(a)).
//!
//! Each PE holds an 8-bit weight register carrying either one 4-bit weight
//! (MODE_4b) or two packed 2-bit weights (MODE_2b), and multiplies against
//! an 8-bit iAct through a tree of four 4-bit × 2-bit multipliers whose
//! partial products are recombined with shifters (Eq. 5).
//!
//! Note on Eq. 5: the shift amounts as printed in the paper do not
//! reconstruct the arithmetic product (e.g. `P11≪2 + P10` cannot equal
//! `w_hi·iAct`, which needs `≪4` between iAct halves). We implement the
//! standard radix recomposition — `P11≪6 + (P10)≪4 + (P01)≪2 + P00` in
//! 4-bit mode and `{P11≪4 + P01, P10≪4 + P00}` in 2-bit mode — and verify
//! bit-exactness against plain multiplication over the full input space.
//!
//! Weight slots are interpreted per their micro-block role: two's
//! complement for inliers, sign-magnitude for outlier halves (§4.3).

use microscopiq_mx::halves::unpack_sign_mag;

/// PE precision mode, selected by the controller's MODE signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PeMode {
    /// One 4-bit weight per PE.
    FourBit,
    /// Two packed 2-bit weights per PE (doubled throughput).
    TwoBit,
}

/// How a weight slot's bits are decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WeightKind {
    /// Two's-complement inlier code.
    TwosComplement,
    /// Sign-magnitude outlier half (`{s, m}`).
    SignMagnitude,
}

/// Result of the multiplication stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MulResult {
    /// MODE_4b: one product.
    Single(i32),
    /// MODE_2b: products of the high and low packed weights.
    Pair {
        /// Product of the weight in bits `[3:2]`.
        high: i32,
        /// Product of the weight in bits `[1:0]`.
        low: i32,
    },
}

/// Decodes a weight slot of `bits` width under the given interpretation.
pub fn decode_weight(raw: u8, bits: u32, kind: WeightKind) -> i32 {
    match kind {
        WeightKind::TwosComplement => {
            let shift = 8 - bits;
            ((raw << shift) as i8 >> shift) as i32
        }
        WeightKind::SignMagnitude => unpack_sign_mag(raw, bits),
    }
}

/// The four 4b×2b partial products of the multiplier tree, on magnitudes.
fn partial_products(a_mag: u32, w_mag: u32) -> [u32; 4] {
    let a1 = (a_mag >> 4) & 0xF;
    let a0 = a_mag & 0xF;
    let w1 = (w_mag >> 2) & 0x3;
    let w0 = w_mag & 0x3;
    // [P00, P01, P10, P11] with Pij = A_i · W_j.
    [a0 * w0, a0 * w1, a1 * w0, a1 * w1]
}

/// The multiplication stage: multiplies the weight register against an
/// 8-bit signed iAct through the partial-product tree.
///
/// In 4-bit mode `weight_reg[3:0]` is one weight; in 2-bit mode
/// `weight_reg[3:2]` and `weight_reg[1:0]` are two weights sharing the
/// iAct. Signs are handled by magnitude multiplication + sign correction
/// (the hardware's Baugh-Wooley equivalent).
///
/// # Panics
///
/// Panics if `iact` is outside the signed 8-bit range.
pub fn multiply(weight_reg: u8, iact: i32, mode: PeMode, kind: WeightKind) -> MulResult {
    assert!((-128..=127).contains(&iact), "iAct must be signed 8-bit");
    let a_mag = iact.unsigned_abs();
    let a_neg = iact < 0;
    match mode {
        PeMode::FourBit => {
            let w = decode_weight(weight_reg & 0xF, 4, kind);
            let w_mag = w.unsigned_abs();
            let p = partial_products(a_mag, w_mag);
            // Radix recomposition: A = A1≪4 + A0, W = W1≪2 + W0 →
            // A·W = P11≪6 + P10≪4 + P01≪2 + P00.
            let mag = (p[3] << 6) + (p[2] << 4) + (p[1] << 2) + p[0];
            let neg = a_neg ^ (w < 0);
            MulResult::Single(if neg { -(mag as i32) } else { mag as i32 })
        }
        PeMode::TwoBit => {
            let w_hi = decode_weight((weight_reg >> 2) & 0x3, 2, kind);
            let w_lo = decode_weight(weight_reg & 0x3, 2, kind);
            let p_hi = partial_products(a_mag, w_hi.unsigned_abs());
            let p_lo = partial_products(a_mag, w_lo.unsigned_abs());
            // With a 2-bit weight only the low weight slice is populated,
            // so each packed product recomposes as A1·w≪4 + A0·w.
            let mag_of = |p: [u32; 4]| (p[2] << 4) + p[0];
            let hi_mag = mag_of(p_hi);
            let lo_mag = mag_of(p_lo);
            let hi = if a_neg ^ (w_hi < 0) {
                -(hi_mag as i32)
            } else {
                hi_mag as i32
            };
            let lo = if a_neg ^ (w_lo < 0) {
                -(lo_mag as i32)
            } else {
                lo_mag as i32
            };
            MulResult::Pair { high: hi, low: lo }
        }
    }
}

/// Accumulation-stage output for one PE (§5.3): inlier results accumulate
/// locally; outlier halves are concatenated with the incoming iAcc and
/// offloaded to ReCoN.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccOutput {
    /// Inlier: `res + iAcc`, forwarded to the next PE row.
    Forward(i64),
    /// Outlier half: `{res, iAcc}` pair offloaded to ReCoN unmodified.
    Offload {
        /// The raw INT product of the half.
        res: i64,
        /// The incoming accumulation, passed through for ReCoN.
        iacc: i64,
    },
}

/// The accumulation stage.
pub fn accumulate(res: i64, iacc: i64, outlier_present: bool) -> AccOutput {
    if outlier_present {
        AccOutput::Offload { res, iacc }
    } else {
        AccOutput::Forward(res + iacc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_bit_mode_matches_plain_multiplication_exhaustively() {
        for raw in 0..16u8 {
            for iact in -128..=127i32 {
                let w = decode_weight(raw, 4, WeightKind::TwosComplement);
                let got = multiply(raw, iact, PeMode::FourBit, WeightKind::TwosComplement);
                assert_eq!(got, MulResult::Single(w * iact), "raw={raw} iact={iact}");
            }
        }
    }

    #[test]
    fn two_bit_mode_matches_plain_multiplication_exhaustively() {
        for raw in 0..16u8 {
            for iact in -128..=127i32 {
                let w_hi = decode_weight((raw >> 2) & 3, 2, WeightKind::TwosComplement);
                let w_lo = decode_weight(raw & 3, 2, WeightKind::TwosComplement);
                let got = multiply(raw, iact, PeMode::TwoBit, WeightKind::TwosComplement);
                assert_eq!(
                    got,
                    MulResult::Pair {
                        high: w_hi * iact,
                        low: w_lo * iact
                    },
                    "raw={raw} iact={iact}"
                );
            }
        }
    }

    #[test]
    fn sign_magnitude_decode_matches_plain_multiplication() {
        for raw in 0..16u8 {
            for iact in [-100, -1, 0, 7, 127] {
                let w = decode_weight(raw, 4, WeightKind::SignMagnitude);
                let got = multiply(raw, iact, PeMode::FourBit, WeightKind::SignMagnitude);
                assert_eq!(got, MulResult::Single(w * iact), "raw={raw} iact={iact}");
            }
        }
    }

    #[test]
    fn sign_magnitude_negative_zero_is_zero() {
        // {s=1, m=0} must multiply to 0 — the case two's complement breaks.
        let got = multiply(0b10, 50, PeMode::TwoBit, WeightKind::SignMagnitude);
        match got {
            MulResult::Pair { low, .. } => assert_eq!(low, 0),
            _ => panic!("expected pair"),
        }
    }

    #[test]
    fn accumulate_forwards_inliers() {
        assert_eq!(accumulate(30, 12, false), AccOutput::Forward(42));
    }

    #[test]
    fn accumulate_offloads_outliers_unmodified() {
        assert_eq!(
            accumulate(30, 12, true),
            AccOutput::Offload { res: 30, iacc: 12 }
        );
    }

    #[test]
    fn two_bit_mode_doubles_throughput_semantics() {
        // The two packed weights are exactly those that would occupy two
        // neighbouring columns at 4-bit mode (§5.3).
        let raw = 0b0111; // w_hi = +1, w_lo = −1 (two's complement 2-bit 11 = −1)
        let got = multiply(raw, 10, PeMode::TwoBit, WeightKind::TwosComplement);
        assert_eq!(got, MulResult::Pair { high: 10, low: -10 });
    }
}
