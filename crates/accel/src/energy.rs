//! Energy model (§7.5): per-operation energy constants at a 7 nm-class
//! process, composed over the workload's compute, NoC, and memory events.
//!
//! Constants are standard published estimates (documented per DESIGN.md §2:
//! the paper's own energy numbers come from PnR + CACTI which are
//! unavailable here); all cross-accelerator comparisons use the same
//! constants, so relative energy — the quantity the paper reports — depends
//! only on each design's traffic and precision mix.

use crate::perf::{AccelConfig, LatencyBreakdown};
use crate::workload::GemmShape;

/// Per-operation energy constants (picojoules).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyConstants {
    /// 2-bit packed INT MAC.
    pub mac_int2_pj: f64,
    /// 4-bit INT MAC.
    pub mac_int4_pj: f64,
    /// 8-bit INT MAC.
    pub mac_int8_pj: f64,
    /// FP16 MAC.
    pub mac_fp16_pj: f64,
    /// FP32 MAC.
    pub mac_fp32_pj: f64,
    /// ReCoN switch operation.
    pub recon_switch_pj: f64,
    /// On-chip SRAM access per byte.
    pub sram_pj_per_byte: f64,
    /// Off-chip DRAM (HBM2) access per byte.
    pub dram_pj_per_byte: f64,
    /// Static leakage power as a fraction of dynamic at full utilization.
    pub static_fraction: f64,
}

impl Default for EnergyConstants {
    fn default() -> Self {
        Self {
            mac_int2_pj: 0.018,
            mac_int4_pj: 0.032,
            mac_int8_pj: 0.110,
            mac_fp16_pj: 0.55,
            mac_fp32_pj: 1.60,
            recon_switch_pj: 0.045,
            sram_pj_per_byte: 6.0,
            dram_pj_per_byte: 31.2,
            static_fraction: 0.12,
        }
    }
}

/// Energy breakdown for a workload run (millijoules).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// PE-array dynamic energy.
    pub compute_mj: f64,
    /// ReCoN dynamic energy.
    pub recon_mj: f64,
    /// On-chip memory energy.
    pub sram_mj: f64,
    /// Off-chip DRAM energy.
    pub dram_mj: f64,
    /// Static/leakage energy over the run.
    pub static_mj: f64,
}

impl EnergyBreakdown {
    /// Total energy (mJ).
    pub fn total_mj(&self) -> f64 {
        self.compute_mj + self.recon_mj + self.sram_mj + self.dram_mj + self.static_mj
    }

    /// Fractional share of each component `(pe, memory, recon)` — the §7.5
    /// power-breakdown view.
    pub fn shares(&self) -> (f64, f64, f64) {
        let t = self.total_mj();
        if t == 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            (self.compute_mj + self.static_mj) / t,
            (self.sram_mj + self.dram_mj) / t,
            self.recon_mj / t,
        )
    }
}

/// Computes the MicroScopiQ accelerator's energy for a workload.
///
/// * `ebw` — effective bit width of weights (off-chip weight traffic);
/// * `outlier_mb_fraction` — share of μBs detouring through ReCoN;
/// * `act_bits` — activation width (iAct/oAct traffic).
pub fn microscopiq_energy(
    workload: &[GemmShape],
    cfg: &AccelConfig,
    latency: &LatencyBreakdown,
    ebw: f64,
    outlier_mb_fraction: f64,
    act_bits: u32,
    k: &EnergyConstants,
) -> EnergyBreakdown {
    let macs: f64 = workload.iter().map(|g| g.macs() as f64).sum();
    let weight_elems: f64 = workload.iter().map(|g| g.weight_elements() as f64).sum();
    let act_elems: f64 = workload
        .iter()
        .map(|g| ((g.k + g.m) * g.n * g.repeats) as f64)
        .sum();

    let mac_pj = match cfg.bb {
        2 => k.mac_int2_pj,
        4 => k.mac_int4_pj,
        _ => k.mac_int8_pj,
    };
    let compute_mj = macs * mac_pj * 1e-9;

    // ReCoN: outlier μB waves route through log2(cols)+1 stages of
    // cols-wide switches; amortized per MAC in an outlier μB.
    let stages = (cfg.cols as f64).log2() + 1.0;
    let recon_ops = macs * outlier_mb_fraction * stages / cfg.rows as f64 * 8.0;
    let recon_mj = recon_ops * k.recon_switch_pj * 1e-9;

    // Weights cross DRAM once (EBW bits) and SRAM twice (L2 + buffer).
    let weight_bytes = weight_elems * ebw / 8.0;
    let act_bytes = act_elems * act_bits as f64 / 8.0;
    let dram_mj = (weight_bytes + act_bytes) * k.dram_pj_per_byte * 1e-9;
    let sram_mj = (weight_bytes * 2.0 + act_bytes * 2.0) * k.sram_pj_per_byte * 1e-9;

    // Static energy scales with runtime and die activity.
    let dynamic = compute_mj + recon_mj + sram_mj + dram_mj;
    let static_mj = dynamic * k.static_fraction / latency.utilization.max(0.05);

    EnergyBreakdown {
        compute_mj,
        recon_mj,
        sram_mj,
        dram_mj,
        static_mj,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::workload_latency;
    use crate::workload::{model_workload, Phase};
    use microscopiq_fm::zoo::model;

    fn setup(bb: u32, ebw: f64) -> (Vec<GemmShape>, AccelConfig, LatencyBreakdown) {
        let wl = model_workload(&model("LLaMA-2-7B"), Phase::Prefill(256));
        let cfg = AccelConfig::paper_64x64(bb, 1);
        let lat = workload_latency(&wl, &cfg, ebw, 0.05);
        (wl, cfg, lat)
    }

    #[test]
    fn two_bit_beats_four_bit_energy() {
        let k = EnergyConstants::default();
        let (wl2, c2, l2) = setup(2, 2.4);
        let (wl4, c4, l4) = setup(4, 4.4);
        let e2 = microscopiq_energy(&wl2, &c2, &l2, 2.4, 0.05, 8, &k).total_mj();
        let e4 = microscopiq_energy(&wl4, &c4, &l4, 4.4, 0.05, 8, &k).total_mj();
        assert!(e2 < e4, "2-bit {e2} vs 4-bit {e4}");
    }

    #[test]
    fn power_shares_match_paper_ballpark() {
        // §7.5: PE ≈ 56%, memory ≈ 37%, ReCoN ≈ 6% for LLaMA-2-7B.
        // Our constants won't match exactly, but the ordering
        // PE > memory > ReCoN and a single-digit ReCoN share must hold.
        let k = EnergyConstants::default();
        let (wl, cfg, lat) = setup(2, 2.4);
        let e = microscopiq_energy(&wl, &cfg, &lat, 2.4, 0.05, 8, &k);
        let (_pe, mem, recon) = e.shares();
        assert!(recon < 0.15, "ReCoN share {recon}");
        assert!(mem > 0.1, "memory share {mem}");
    }

    #[test]
    fn higher_outlier_fraction_costs_recon_energy() {
        let k = EnergyConstants::default();
        let (wl, cfg, lat) = setup(2, 2.4);
        let low = microscopiq_energy(&wl, &cfg, &lat, 2.4, 0.02, 8, &k).recon_mj;
        let high = microscopiq_energy(&wl, &cfg, &lat, 2.4, 0.10, 8, &k).recon_mj;
        assert!(high > low * 4.0);
    }

    #[test]
    fn ebw_drives_dram_energy() {
        let k = EnergyConstants::default();
        let (wl, cfg, lat) = setup(2, 2.4);
        let slim = microscopiq_energy(&wl, &cfg, &lat, 2.36, 0.05, 8, &k).dram_mj;
        let fat = microscopiq_energy(&wl, &cfg, &lat, 16.0, 0.05, 8, &k).dram_mj;
        assert!(fat > slim * 3.0);
    }
}
