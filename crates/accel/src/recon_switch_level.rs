//! Switch-level ReCoN simulation: an explicit multistage butterfly where
//! every 2×2 switch executes Pass/Swap/Merge per its configuration
//! (§5.4, Fig. 7(c)).
//!
//! Per the Fig. 15 wiring, inlier partial sums use the direct PE-to-PE
//! wires; only outlier-half columns enter the network. A Lower half
//! corrects its column address LSB-first toward the Upper half's column;
//! the stage of the highest differing address bit is where both halves
//! meet in one switch and Merge executes. The vacated pruned column emits
//! its pass-through iAcc down the straight path at the first Swap.
//!
//! Two pairs whose paths demand the same switch port cannot route in the
//! same pass — the column-wise arbiters defer one pair to the next
//! network pass (the sync-buffer N−1 serialization of §5.4). The number
//! of extra passes is the structural-conflict count this model exposes;
//! the direct model in [`crate::recon`] remains the functional reference
//! and the two are equivalence-tested over every legal merge pattern.

use crate::recon::{ColumnInput, ReCoN, RouteResult};
use microscopiq_core::microblock::PermEntry;

/// A switch operation, as configured by the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchOp {
    /// Left→left, right→right.
    Pass,
    /// Left→right, right→left.
    Swap,
    /// Combine an Upper/Lower half pair into the FP outlier partial sum.
    Merge,
}

/// In-flight value inside one network pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flit {
    Empty,
    /// A half of outlier `pair`; `upper` distinguishes the two.
    Half {
        pair: usize,
        upper: bool,
    },
    /// A merged partial sum travelling to the Upper column.
    Merged {
        pair: usize,
    },
}

/// Result of a switch-level pass.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchLevelResult {
    /// Per-column outputs (fixed point).
    pub outputs: Vec<i64>,
    /// Switch operations executed (pass ops on live ports + swaps + merges).
    pub switch_ops: usize,
    /// Network passes needed (1 = conflict-free).
    pub passes: usize,
    /// Pairs deferred at least once (structural port conflicts).
    pub conflicts: usize,
}

/// Routes one row's outputs through an explicit butterfly.
///
/// Semantics match [`ReCoN::route`] (equivalence is property-tested).
///
/// # Panics
///
/// Panics on malformed inputs (wrong width, merges on non-offload
/// columns, non-power-of-two width).
pub fn route_switch_level(
    n: usize,
    inputs: &[ColumnInput],
    perm: &[PermEntry],
    signed_iact: &[i64],
    mantissa_bits: u32,
) -> SwitchLevelResult {
    assert!(
        n.is_power_of_two() && n >= 2,
        "width must be a power of two"
    );
    assert_eq!(inputs.len(), n, "input width mismatch");
    assert_eq!(perm.len(), signed_iact.len(), "one iAct per outlier");
    let stages = (n as u32).ilog2() as usize;
    let half_shift = mantissa_bits / 2;

    // Straight columns and pruned columns resolve without the network.
    let mut outputs = vec![0i64; n];
    for (c, inp) in inputs.iter().enumerate() {
        if let ColumnInput::Psum(v) = inp {
            outputs[c] = *v;
        }
    }
    let offload = |c: usize| -> (i64, i64) {
        match inputs[c] {
            ColumnInput::Offload { res, iacc } => (res, iacc),
            other => panic!("column {c} is not an offload: {other:?}"),
        }
    };
    for e in perm {
        // The pruned (Lower) column passes its own iAcc through.
        outputs[e.lower_loc as usize] = offload(e.lower_loc as usize).1;
    }

    let merge_value = |k: usize| -> i64 {
        let e = &perm[k];
        let (u_res, u_iacc) = offload(e.upper_loc as usize);
        let (l_res, _) = offload(e.lower_loc as usize);
        u_iacc + (signed_iact[k] << mantissa_bits) + (u_res << half_shift) + l_res
    };

    let mut pending: Vec<usize> = (0..perm.len()).collect();
    let mut passes = 0usize;
    let mut conflicts = 0usize;
    let mut switch_ops = 0usize;

    while !pending.is_empty() {
        passes += 1;
        if passes > n {
            // Safety valve: serialize whatever remains, one per pass.
            for &k in &pending {
                outputs[perm[k].upper_loc as usize] = merge_value(k);
                switch_ops += stages + 1;
            }
            break;
        }
        // Inject this pass's halves.
        let mut wires = vec![Flit::Empty; n];
        for &k in &pending {
            wires[perm[k].upper_loc as usize] = Flit::Half {
                pair: k,
                upper: true,
            };
            wires[perm[k].lower_loc as usize] = Flit::Half {
                pair: k,
                upper: false,
            };
        }
        let mut deferred: Vec<usize> = Vec::new();
        let mut merged_this_pass: Vec<usize> = Vec::new();

        for s in 0..stages {
            let bit = 1usize << s;
            let mut next = vec![Flit::Empty; n];
            for p in (0..n).filter(|p| p & bit == 0) {
                let q = p | bit;
                let a = wires[p];
                let b = wires[q];
                // Does a flit at `pos` want to cross this stage?
                let wants = |f: Flit, pos: usize| match f {
                    Flit::Half { pair, upper: false } => {
                        (pos ^ perm[pair].upper_loc as usize) & bit != 0
                    }
                    // Uppers hold position; merged values hold position.
                    _ => false,
                };
                // Merge: both halves of one pair in one switch.
                if let (Flit::Half { pair: ka, .. }, Flit::Half { pair: kb, .. }) = (a, b) {
                    if ka == kb {
                        let dest = perm[ka].upper_loc as usize;
                        let out = if dest == p { p } else { q };
                        next[out] = Flit::Merged { pair: ka };
                        merged_this_pass.push(ka);
                        switch_ops += 1;
                        continue;
                    }
                }
                let a_cross = wants(a, p);
                let b_cross = wants(b, q);
                match (a_cross, b_cross) {
                    (false, false) => {
                        next[p] = a;
                        next[q] = b;
                        if a != Flit::Empty || b != Flit::Empty {
                            switch_ops += 1; // pass on a live switch
                        }
                    }
                    (true, false) => {
                        if b == Flit::Empty {
                            next[q] = a; // swap into the free port
                            switch_ops += 1;
                        } else {
                            // Port occupied by another pair: defer `a`'s pair.
                            if let Flit::Half { pair, .. } = a {
                                if !deferred.contains(&pair) {
                                    deferred.push(pair);
                                }
                            }
                            next[q] = b;
                            switch_ops += 1;
                        }
                    }
                    (false, true) => {
                        if a == Flit::Empty {
                            next[p] = b;
                            switch_ops += 1;
                        } else {
                            if let Flit::Half { pair, .. } = b {
                                if !deferred.contains(&pair) {
                                    deferred.push(pair);
                                }
                            }
                            next[p] = a;
                            switch_ops += 1;
                        }
                    }
                    (true, true) => {
                        // Two lowers of different pairs both want to cross:
                        // the swap serves both simultaneously.
                        next[q] = a;
                        next[p] = b;
                        switch_ops += 1;
                    }
                }
            }
            // Drop halves of deferred pairs from the wires (their switches
            // pass them to the sync buffer for the next round).
            for w in next.iter_mut() {
                if let Flit::Half { pair, .. } = *w {
                    if deferred.contains(&pair) {
                        *w = Flit::Empty;
                    }
                }
            }
            wires = next;
        }

        // Output stage: merged flits land at their Upper columns.
        for w in &wires {
            if let Flit::Merged { pair } = *w {
                outputs[perm[pair].upper_loc as usize] = merge_value(pair);
                switch_ops += 1;
            }
        }
        // Any pair that neither merged nor was explicitly deferred is
        // stuck (its halves separated mid-network) — retry it.
        let mut next_pending: Vec<usize> = Vec::new();
        for &k in &pending {
            if !merged_this_pass.contains(&k) && !next_pending.contains(&k) {
                next_pending.push(k);
            }
        }
        conflicts += next_pending.len();
        // Guarantee progress: if nothing merged, force the first pair
        // through alone next pass.
        if merged_this_pass.is_empty()
            && !next_pending.is_empty()
            && next_pending.len() == pending.len()
        {
            let k = next_pending.remove(0);
            outputs[perm[k].upper_loc as usize] = merge_value(k);
            switch_ops += stages + 1;
        }
        pending = next_pending;
    }

    SwitchLevelResult {
        outputs,
        switch_ops,
        passes,
        conflicts,
    }
}

/// Convenience wrapper returning the same shape as [`ReCoN::route`].
pub fn route_switch_level_as_result(
    recon: &ReCoN,
    inputs: &[ColumnInput],
    perm: &[PermEntry],
    signed_iact: &[i64],
    mantissa_bits: u32,
) -> RouteResult {
    let r = route_switch_level(recon.width(), inputs, perm, signed_iact, mantissa_bits);
    RouteResult {
        outputs: r.outputs,
        switch_ops: r.switch_ops,
        merges: perm.len(),
        stages: recon.stages(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn offload(res: i64, iacc: i64) -> ColumnInput {
        ColumnInput::Offload { res, iacc }
    }

    #[test]
    fn walkthrough_matches_reference() {
        let inputs = [
            ColumnInput::Psum(40),
            ColumnInput::Psum(40),
            offload(32, 32),
            offload(0, 32),
        ];
        let perm = [PermEntry {
            upper_loc: 2,
            lower_loc: 3,
        }];
        let direct = ReCoN::new(4).route(&inputs, &perm, &[32], 2);
        let switched = route_switch_level(4, &inputs, &perm, &[32], 2);
        assert_eq!(switched.outputs, direct.outputs);
        assert_eq!(switched.passes, 1);
        assert_eq!(switched.conflicts, 0);
    }

    #[test]
    fn exhaustive_single_pairs_match_reference_n8() {
        for u in 0..8usize {
            for l in 0..8usize {
                if u == l {
                    continue;
                }
                let mut inputs = vec![ColumnInput::Psum(100); 8];
                inputs[u] = offload(3, 44);
                inputs[l] = offload(1, 0);
                let perm = [PermEntry {
                    upper_loc: u as u8,
                    lower_loc: l as u8,
                }];
                let direct = ReCoN::new(8).route(&inputs, &perm, &[7], 2);
                let switched = route_switch_level(8, &inputs, &perm, &[7], 2);
                assert_eq!(switched.outputs, direct.outputs, "pair ({u},{l})");
                assert_eq!(switched.passes, 1, "single pair must be conflict-free");
            }
        }
    }

    #[test]
    fn crossing_pairs_serialize_but_stay_correct() {
        // Pair 1's lower path (6→…→3) crosses pair 0's territory — the
        // case that defeats single-pass routing.
        let mut inputs = vec![ColumnInput::Psum(9); 8];
        inputs[1] = offload(2, 1);
        inputs[2] = offload(1, 0);
        inputs[3] = offload(-3, 5);
        inputs[6] = offload(-1, 0);
        let perm = [
            PermEntry {
                upper_loc: 1,
                lower_loc: 2,
            },
            PermEntry {
                upper_loc: 3,
                lower_loc: 6,
            },
        ];
        let direct = ReCoN::new(8).route(&inputs, &perm, &[3, -3], 2);
        let switched = route_switch_level(8, &inputs, &perm, &[3, -3], 2);
        assert_eq!(switched.outputs, direct.outputs);
    }

    #[test]
    fn disjoint_subtree_pairs_route_in_one_pass() {
        let mut inputs = vec![ColumnInput::Psum(9); 8];
        inputs[0] = offload(2, 1);
        inputs[1] = offload(1, 0);
        inputs[4] = offload(-3, 5);
        inputs[5] = offload(-1, 0);
        let perm = [
            PermEntry {
                upper_loc: 0,
                lower_loc: 1,
            },
            PermEntry {
                upper_loc: 4,
                lower_loc: 5,
            },
        ];
        let direct = ReCoN::new(8).route(&inputs, &perm, &[3, -3], 2);
        let switched = route_switch_level(8, &inputs, &perm, &[3, -3], 2);
        assert_eq!(switched.outputs, direct.outputs);
        assert_eq!(switched.passes, 1);
    }

    #[test]
    fn max_occupancy_four_pairs_n8() {
        // A full μB: 4 outliers in 8 columns (every inlier pruned).
        let inputs: Vec<ColumnInput> = (0..8).map(|c| offload(c as i64, 10)).collect();
        let perm = [
            PermEntry {
                upper_loc: 0,
                lower_loc: 1,
            },
            PermEntry {
                upper_loc: 2,
                lower_loc: 3,
            },
            PermEntry {
                upper_loc: 4,
                lower_loc: 5,
            },
            PermEntry {
                upper_loc: 6,
                lower_loc: 7,
            },
        ];
        let iacts = [5i64, -5, 9, -9];
        let direct = ReCoN::new(8).route(&inputs, &perm, &iacts, 2);
        let switched = route_switch_level(8, &inputs, &perm, &iacts, 2);
        assert_eq!(switched.outputs, direct.outputs);
        assert_eq!(
            switched.passes, 1,
            "adjacent pairs occupy disjoint switches"
        );
    }
}
