//! ReCoN — the Redistribution and Coordination NoC (§5.4).
//!
//! A multistage butterfly network of `n·(log2(n)+1)` 2×2 switches sits
//! between PE rows, time-multiplexed across them. When a row holding
//! outlier μBs emits its column outputs, ReCoN routes each outlier's Lower
//! half from its pruned-slot column toward the Upper half's column
//! (Swap stages), injects the pruned column's pass-through iAcc, and
//! executes Merge: `iAcc + (-1)^s·iAct + upper·iAct·2^(−mb/2) +
//! lower·iAct·2^(−mb)` — the exact FP outlier partial sum.
//!
//! The functional result here is exact (fixed-point, DESIGN.md §7). Switch
//! occupancy is modelled per stage along the butterfly bit-correction
//! paths; the per-row switch-op counters are used by the energy model, and
//! cross-row arbitration (the sync-buffer contention of Fig. 16(b)) lives
//! in [`crate::perf`].

use microscopiq_core::microblock::PermEntry;

/// One column's contribution arriving at ReCoN from a PE row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnInput {
    /// Inlier column: the accumulated partial sum (fixed point), passed
    /// straight down.
    Psum(i64),
    /// Offloaded outlier half: the raw half product and the pass-through
    /// accumulation (fixed point).
    Offload {
        /// Raw INT product `half_value · iAct` (not yet shifted).
        res: i64,
        /// Incoming accumulation at fixed point.
        iacc: i64,
    },
}

/// The outcome of routing one row's outputs through ReCoN.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteResult {
    /// Reordered, merged partial sums per column (fixed point).
    pub outputs: Vec<i64>,
    /// Switch operations executed (pass/swap/merge), for the energy model.
    pub switch_ops: usize,
    /// Number of merge operations (= outliers processed).
    pub merges: usize,
    /// Pipeline stages traversed (`log2(n)+1`).
    pub stages: usize,
}

/// A ReCoN instance spanning `n` columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReCoN {
    n: usize,
}

impl ReCoN {
    /// Creates a network over `n` columns.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a power of two ≥ 2.
    pub fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two() && n >= 2,
            "ReCoN width must be a power of two"
        );
        Self { n }
    }

    /// Network width.
    pub fn width(&self) -> usize {
        self.n
    }

    /// Number of pipeline stages: `log2(n) + 1` (input/output stages
    /// included per the paper's `n(log2 n + 1)` switch count).
    pub fn stages(&self) -> usize {
        (self.n as u32).ilog2() as usize + 1
    }

    /// Total switch count.
    pub fn switch_count(&self) -> usize {
        self.n * self.stages()
    }

    /// Routes one row's column outputs.
    ///
    /// * `inputs[c]` — what column `c`'s PE emitted;
    /// * `perm` — the row's permutation entries (μB-relative locations are
    ///   expected to be pre-offset to absolute columns);
    /// * `signed_iact[k]` — `(-1)^s · iAct` for outlier `k` (hidden-bit
    ///   contribution), already sign-corrected;
    /// * `mantissa_bits` — `mb` of the outlier format (2 for e1m2, 4 for
    ///   e3m4).
    ///
    /// # Panics
    ///
    /// Panics if an entry references a column without an
    /// [`ColumnInput::Offload`], or the input width mismatches.
    pub fn route(
        &self,
        inputs: &[ColumnInput],
        perm: &[PermEntry],
        signed_iact: &[i64],
        mantissa_bits: u32,
    ) -> RouteResult {
        assert_eq!(inputs.len(), self.n, "input width mismatch");
        assert_eq!(perm.len(), signed_iact.len(), "one iAct per outlier");
        let half = mantissa_bits / 2;

        let mut outputs: Vec<i64> = inputs
            .iter()
            .map(|inp| match inp {
                ColumnInput::Psum(v) => *v,
                // Pruned/outlier columns are rewritten below.
                ColumnInput::Offload { iacc, .. } => *iacc,
            })
            .collect();

        // Every live column occupies one switch port per stage (Pass).
        let mut switch_ops = self.n * self.stages();
        let mut merges = 0;

        for (k, e) in perm.iter().enumerate() {
            let u = e.upper_loc as usize;
            let l = e.lower_loc as usize;
            let (u_res, u_iacc) = match inputs[u] {
                ColumnInput::Offload { res, iacc } => (res, iacc),
                other => panic!("upper column {u} is not an offload: {other:?}"),
            };
            let (l_res, _l_iacc) = match inputs[l] {
                ColumnInput::Offload { res, iacc } => (res, iacc),
                other => panic!("lower column {l} is not an offload: {other:?}"),
            };
            // Merge (‖): select the Upper result's iAcc (the Lower column's
            // iAcc was already passed through during Swap), shift the
            // mantissa halves into place, add the hidden bit. At mb
            // fractional bits: hidden ≪ mb, upper half ≪ mb/2, lower ≪ 0 —
            // the lossless form of the paper's ≫mb/2 / ≫mb shifts.
            let merged = u_iacc + (signed_iact[k] << mantissa_bits) + (u_res << half) + l_res;
            outputs[u] = merged;
            // The pruned column passes its own iAcc (already set above).
            // Swap ops: one per corrected address bit of l→u, plus the
            // merge itself.
            let distance = (u ^ l).count_ones() as usize;
            switch_ops += distance;
            merges += 1;
        }
        switch_ops += merges;

        RouteResult {
            outputs,
            switch_ops,
            merges,
            stages: self.stages(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_walkthrough_figure8() {
        // 4-wide μB, outlier 1.5 = 1.10₂ (s=0, m=10) at column 2, Lower at
        // column 3. iAct = 32, iAcc = 8 for all columns. Inliers at columns
        // 0, 1 computed psums 10 and 10 (arbitrary). Expected merged outlier
        // psum: 8 + 1.5·32 = 56.
        let recon = ReCoN::new(4);
        let mb = 2u32; // e1m2
        let fp = |v: i64| v << mb; // fixed point with mb fractional bits
        let inputs = [
            ColumnInput::Psum(fp(10)),
            ColumnInput::Psum(fp(10)),
            ColumnInput::Offload {
                res: 32,
                iacc: fp(8),
            }, // upper {0,1}·32
            ColumnInput::Offload {
                res: 0,
                iacc: fp(8),
            }, // lower {0,0}
        ];
        let perm = [PermEntry {
            upper_loc: 2,
            lower_loc: 3,
        }];
        let got = recon.route(&inputs, &perm, &[32], mb);
        assert_eq!(got.outputs[2], fp(56), "merged outlier psum");
        assert_eq!(got.outputs[3], fp(8), "pruned column passes iAcc");
        assert_eq!(got.outputs[0], fp(10));
        assert_eq!(got.merges, 1);
    }

    #[test]
    fn negative_outlier_walkthrough() {
        // Outlier −1.5: halves {s=1,m1=1}→−1 and {s=1,m0=0}→0, hidden −1.
        let recon = ReCoN::new(4);
        let mb = 2u32;
        let fp = |v: i64| v << mb;
        let inputs = [
            ColumnInput::Psum(fp(0)),
            ColumnInput::Offload {
                res: -32,
                iacc: fp(8),
            },
            ColumnInput::Offload {
                res: 0,
                iacc: fp(8),
            },
            ColumnInput::Psum(fp(0)),
        ];
        let perm = [PermEntry {
            upper_loc: 1,
            lower_loc: 2,
        }];
        let got = recon.route(&inputs, &perm, &[-32], mb);
        assert_eq!(got.outputs[1], fp(8 - 48)); // 8 − 1.5·32
        assert_eq!(got.outputs[2], fp(8));
    }

    #[test]
    fn e3m4_merge_is_exact_for_all_mantissas() {
        let recon = ReCoN::new(8);
        let mb = 4u32;
        for mant in 0..16u32 {
            for sign in [1i64, -1] {
                for iact in [-77i64, 13, 127] {
                    let hi = ((mant >> 2) & 3) as i64 * sign;
                    let lo = (mant & 3) as i64 * sign;
                    let iacc = 1000i64 << mb;
                    let mut inputs = vec![ColumnInput::Psum(0); 8];
                    inputs[5] = ColumnInput::Offload {
                        res: hi * iact,
                        iacc,
                    };
                    inputs[2] = ColumnInput::Offload {
                        res: lo * iact,
                        iacc: 0,
                    };
                    let perm = [PermEntry {
                        upper_loc: 5,
                        lower_loc: 2,
                    }];
                    let got = recon.route(&inputs, &perm, &[sign * iact], mb);
                    let value = sign as f64 * (1.0 + mant as f64 / 16.0);
                    let expect = 1000 * 16 + (value * iact as f64 * 16.0).round() as i64;
                    assert_eq!(
                        got.outputs[5], expect,
                        "mant={mant} sign={sign} iact={iact}"
                    );
                }
            }
        }
    }

    #[test]
    fn multiple_merges_in_one_row() {
        let recon = ReCoN::new(8);
        let mb = 2u32;
        let fp = |v: i64| v << mb;
        let mut inputs = vec![ColumnInput::Psum(fp(1)); 8];
        inputs[0] = ColumnInput::Offload {
            res: 10,
            iacc: fp(2),
        };
        inputs[3] = ColumnInput::Offload {
            res: 10,
            iacc: fp(0),
        };
        inputs[4] = ColumnInput::Offload {
            res: -20,
            iacc: fp(5),
        };
        inputs[6] = ColumnInput::Offload {
            res: 0,
            iacc: fp(0),
        };
        let perm = [
            PermEntry {
                upper_loc: 0,
                lower_loc: 3,
            },
            PermEntry {
                upper_loc: 4,
                lower_loc: 6,
            },
        ];
        let got = recon.route(&inputs, &perm, &[10, -20], mb);
        // Outlier 0: m={1,1} → 1.75·10 + 2 = 19.5 → fp 78.
        assert_eq!(got.outputs[0], (19.5 * 4.0) as i64);
        // Outlier 1: m={1,0} → −1.5·20 + 5 = −25 → fp −100.
        assert_eq!(got.outputs[4], -100);
        assert_eq!(got.merges, 2);
    }

    #[test]
    fn switch_counts_match_topology() {
        let recon = ReCoN::new(64);
        assert_eq!(recon.stages(), 7); // log2(64)+1
        assert_eq!(recon.switch_count(), 64 * 7); // n(log2 n + 1)
    }

    #[test]
    fn switch_ops_grow_with_routing_distance() {
        let recon = ReCoN::new(8);
        let mb = 2u32;
        let mk = |u: u8, l: u8| {
            let mut inputs = vec![ColumnInput::Psum(0); 8];
            inputs[u as usize] = ColumnInput::Offload { res: 0, iacc: 0 };
            inputs[l as usize] = ColumnInput::Offload { res: 0, iacc: 0 };
            recon
                .route(
                    &inputs,
                    &[PermEntry {
                        upper_loc: u,
                        lower_loc: l,
                    }],
                    &[0],
                    mb,
                )
                .switch_ops
        };
        // Distance 1 (adjacent) vs distance 3 (0b000 ↔ 0b111).
        assert!(mk(0, 7) > mk(0, 1));
    }

    #[test]
    #[should_panic(expected = "is not an offload")]
    fn merge_requires_offload_columns() {
        let recon = ReCoN::new(4);
        let inputs = vec![ColumnInput::Psum(0); 4];
        let _ = recon.route(
            &inputs,
            &[PermEntry {
                upper_loc: 0,
                lower_loc: 1,
            }],
            &[0],
            2,
        );
    }
}
