//! Workload extraction: foundational-model specs → GEMM shape lists for
//! the accelerator and GPU performance models.

use microscopiq_fm::zoo::ModelSpec;

/// One GEMM to execute: `Y(M×N) = W(M×K) · X(K×N)`, repeated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GemmShape {
    /// Layer role.
    pub name: String,
    /// Output channels.
    pub m: usize,
    /// Input features (dot-product dimension).
    pub k: usize,
    /// Batch/tokens.
    pub n: usize,
    /// Repetitions across the model.
    pub repeats: usize,
}

impl GemmShape {
    /// Multiply-accumulate count for all repetitions.
    pub fn macs(&self) -> u64 {
        (self.m * self.k * self.n) as u64 * self.repeats as u64
    }

    /// Weight element count for all repetitions.
    pub fn weight_elements(&self) -> u64 {
        (self.m * self.k) as u64 * self.repeats as u64
    }
}

/// Inference phase, fixing the GEMM batch dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Prompt processing with the given sequence length.
    Prefill(usize),
    /// Single-token generation (GEMV-like, memory bound).
    Decode,
}

/// Extracts the full-model GEMM workload at real (unscaled) dimensions.
pub fn model_workload(spec: &ModelSpec, phase: Phase) -> Vec<GemmShape> {
    let n = match phase {
        Phase::Prefill(seq) => seq,
        Phase::Decode => 1,
    };
    spec.real_gemm_shapes()
        .into_iter()
        .map(|(name, m, k, repeats)| GemmShape {
            name,
            m,
            k,
            n,
            repeats,
        })
        .collect()
}

/// Total MACs for a workload.
pub fn total_macs(workload: &[GemmShape]) -> u64 {
    workload.iter().map(|g| g.macs()).sum()
}

/// Total weight elements for a workload.
pub fn total_weights(workload: &[GemmShape]) -> u64 {
    workload.iter().map(|g| g.weight_elements()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use microscopiq_fm::zoo::model;

    #[test]
    fn llama3_workload_has_real_dimensions() {
        let w = model_workload(&model("LLaMA-3-8B"), Phase::Prefill(512));
        assert!(w.iter().any(|g| g.m == 14336 && g.k == 4096));
        assert!(w.iter().all(|g| g.n == 512));
    }

    #[test]
    fn decode_is_gemv() {
        let w = model_workload(&model("LLaMA-3-8B"), Phase::Decode);
        assert!(w.iter().all(|g| g.n == 1));
    }

    #[test]
    fn macs_scale_with_sequence_length() {
        let spec = model("Phi-3-3.8B");
        let short = total_macs(&model_workload(&spec, Phase::Prefill(128)));
        let long = total_macs(&model_workload(&spec, Phase::Prefill(512)));
        assert_eq!(long, short * 4);
    }

    #[test]
    fn weight_count_tracks_model_size_ordering() {
        let small = total_weights(&model_workload(&model("Phi-3-3.8B"), Phase::Decode));
        let large = total_weights(&model_workload(&model("LLaMA-2-70B"), Phase::Decode));
        assert!(large > small * 5);
    }
}
