//! The MicroScopiQ controller model (§5.2): derives the per-row control
//! signals — MODE (2b/4b), `Outlier_Present`, `OAcc_NoC/PE` routing, and
//! the PE shift values (§5.5's scale conformity) — from a packed layer's
//! metadata, exactly as the hardware's instruction buffer would feed them.
//!
//! This is the glue the functional array implicitly computes inline; the
//! explicit model lets tests assert that control-signal generation is a
//! pure function of the packed metadata (no weight values needed), which
//! is what makes the paper's homogeneous-PE claim work.

use crate::pe::PeMode;
use microscopiq_core::config::GroupAxis;
use microscopiq_core::packed::PackedLayer;

/// Where a PE row's partial sums are routed (§5.1 step 4–5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PsumRoute {
    /// Directly to the next PE row (or the oAct buffer for the last row).
    NextRow,
    /// Through ReCoN for reordering and outlier merge.
    ReCoN,
}

/// Control signals for one mapped μB row-segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowControl {
    /// PE precision mode.
    pub mode: PeMode,
    /// Per-slot `Outlier_Present` (drives the ADD-stage offload).
    pub outlier_present: Vec<bool>,
    /// Partial-sum routing for this row.
    pub route: PsumRoute,
    /// Per-slot shift (in bits) applied at the PE input to align this
    /// μB's scale with the output reference exponent (§5.5).
    pub shift_values: Vec<i32>,
}

/// A full control program: one [`RowControl`] per (line, μB) in mapping
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlProgram {
    /// Per-μB controls, ordered line-major.
    pub rows: Vec<RowControl>,
    /// The reference output exponent every shift aligns to.
    pub reference_exponent: i32,
}

impl ControlProgram {
    /// Fraction of μB rows routed through ReCoN.
    pub fn recon_fraction(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows
            .iter()
            .filter(|r| r.route == PsumRoute::ReCoN)
            .count() as f64
            / self.rows.len() as f64
    }
}

/// Generates the control program for a packed layer.
///
/// # Panics
///
/// Panics if the layer is not `OutputChannel`-packed (the hardware
/// mapping, DESIGN.md §2).
pub fn generate_control(packed: &PackedLayer) -> ControlProgram {
    assert_eq!(
        packed.axis(),
        GroupAxis::OutputChannel,
        "control generation requires the hardware (OutputChannel) packing"
    );
    let mode = if packed.inlier_bits() == 2 {
        PeMode::TwoBit
    } else {
        PeMode::FourBit
    };
    let fmt = packed.outlier_format();
    let mb = fmt.mantissa_bits() as i32;

    // Reference exponent: the minimum applied exponent across the layer
    // (inlier Isf and outlier MXScale−Isf), so every shift is ≥ 0 — a
    // left-shifter suffices, as in Fig. 4's `<<` port.
    let mut reference = i32::MAX;
    for g in packed.groups() {
        reference = reference.min(g.isf.exponent());
        for blk in &g.micro_blocks {
            if let Some(meta) = &blk.meta {
                reference = reference.min(meta.mxscale.total_exponent() - g.isf.exponent() - mb);
            }
        }
    }
    if reference == i32::MAX {
        reference = 0;
    }

    let mut rows = Vec::new();
    for g in packed.groups() {
        for blk in &g.micro_blocks {
            let n = blk.codes.len();
            let mut outlier_present = vec![false; n];
            let mut shift_values = vec![g.isf.exponent() - reference; n];
            let route = match &blk.meta {
                None => PsumRoute::NextRow,
                Some(meta) => {
                    let out_shift =
                        meta.mxscale.total_exponent() - g.isf.exponent() - mb - reference;
                    for e in meta.perm.entries() {
                        outlier_present[e.upper_loc as usize] = true;
                        outlier_present[e.lower_loc as usize] = true;
                        shift_values[e.upper_loc as usize] = out_shift;
                        shift_values[e.lower_loc as usize] = out_shift;
                    }
                    PsumRoute::ReCoN
                }
            };
            rows.push(RowControl {
                mode,
                outlier_present,
                route,
                shift_values,
            });
        }
    }
    ControlProgram {
        rows,
        reference_exponent: reference,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microscopiq_core::config::QuantConfig;
    use microscopiq_core::solver::solve;
    use microscopiq_core::traits::LayerTensors;
    use microscopiq_linalg::{Matrix, SeededRng};

    fn packed(bits: u32, outliers: bool) -> PackedLayer {
        let mut rng = SeededRng::new(7);
        let mut w = Matrix::from_fn(32, 32, |_, _| rng.normal(0.0, 0.02));
        if outliers {
            for _ in 0..24 {
                let r = rng.below(32);
                let c = rng.below(32);
                w[(r, c)] = rng.sign() * rng.uniform_range(0.15, 0.4);
            }
        }
        let x = Matrix::from_fn(32, 16, |_, _| rng.normal(0.0, 1.0));
        let layer = LayerTensors::new(w, x).unwrap();
        // A pure Gaussian body still trips the 3σ rule occasionally; the
        // "clean" fixture raises the threshold so nothing qualifies.
        let sigma = if outliers { 3.0 } else { 50.0 };
        let cfg = QuantConfig::builder(bits)
            .macro_block(32)
            .row_block(32)
            .sigma_threshold(sigma)
            .group_axis(GroupAxis::OutputChannel)
            .build()
            .unwrap();
        solve(&layer, &cfg).unwrap().packed.unwrap()
    }

    #[test]
    fn mode_follows_bit_budget() {
        assert_eq!(
            generate_control(&packed(2, false)).rows[0].mode,
            PeMode::TwoBit
        );
        assert_eq!(
            generate_control(&packed(4, false)).rows[0].mode,
            PeMode::FourBit
        );
    }

    #[test]
    fn clean_layers_never_route_to_recon() {
        let ctl = generate_control(&packed(2, false));
        assert_eq!(ctl.recon_fraction(), 0.0);
        assert!(ctl
            .rows
            .iter()
            .all(|r| r.outlier_present.iter().all(|&b| !b)));
    }

    #[test]
    fn outlier_rows_route_to_recon() {
        let p = packed(2, true);
        let ctl = generate_control(&p);
        assert!(ctl.recon_fraction() > 0.0);
        // ReCoN fraction equals the packed μB occupancy.
        assert!((ctl.recon_fraction() - p.outlier_micro_block_fraction()).abs() < 1e-12);
        // Exactly the upper/lower slots of routed rows carry the flag.
        for row in ctl.rows.iter().filter(|r| r.route == PsumRoute::ReCoN) {
            let flagged = row.outlier_present.iter().filter(|&&b| b).count();
            assert!(flagged >= 2 && flagged % 2 == 0, "{flagged} flagged slots");
        }
    }

    #[test]
    fn shifts_are_nonnegative_left_shifts() {
        // §5.5 conformity: choosing the minimum exponent as reference makes
        // every per-slot shift a plain left shift.
        let ctl = generate_control(&packed(2, true));
        for row in &ctl.rows {
            for &s in &row.shift_values {
                assert!(s >= 0, "negative shift {s}");
            }
        }
    }

    #[test]
    fn control_is_metadata_only() {
        // Two layers with identical structure but different weight values
        // in the inlier body produce identical control programs whenever
        // their packed metadata agrees — regenerating from the same packed
        // layer must be deterministic.
        let p = packed(2, true);
        assert_eq!(generate_control(&p), generate_control(&p));
    }

    #[test]
    #[should_panic(expected = "OutputChannel")]
    fn dot_product_packing_is_rejected() {
        let mut rng = SeededRng::new(9);
        let w = Matrix::from_fn(16, 16, |_, _| rng.normal(0.0, 0.02));
        let x = Matrix::from_fn(16, 8, |_, _| rng.normal(0.0, 1.0));
        let layer = LayerTensors::new(w, x).unwrap();
        let cfg = QuantConfig::w2()
            .macro_block(16)
            .row_block(16)
            .build()
            .unwrap();
        let p = solve(&layer, &cfg).unwrap().packed.unwrap();
        let _ = generate_control(&p);
    }
}
