//! The MicroScopiQ accelerator simulator (§5–§7 of the paper).
//!
//! Two levels of fidelity:
//!
//! * **Functional** — [`pe`] (Eq. 5 multi-precision multiplier tree),
//!   [`recon`] (butterfly Pass/Swap/Merge with exact FP-outlier partial
//!   sums), and [`array`] (a packed GEMM executed through those
//!   primitives, bit-exact against the dequantized reference).
//! * **Analytic** — [`perf`] (tiling + memory-overlap + ReCoN-contention
//!   latency), [`energy`] (per-op energy composition), [`area`] (Table 5
//!   component areas, array scaling, NoC-integration overheads), and
//!   [`baselines`] (OliVe/GOBO/OLAccel/AdaptivFloat/ANT models for the
//!   iso-accuracy comparisons).
//!
//! [`workload`] converts model specs into real-dimension GEMM lists
//! (prefill and decode phases).

pub mod area;
pub mod array;
pub mod baselines;
pub mod controller;
pub mod energy;
pub mod memory;
pub mod pe;
pub mod perf;
pub mod recon;
pub mod recon_switch_level;
pub mod workload;

pub use area::{gobo_area, microscopiq_area, olive_area, AreaBreakdown};
pub use array::{execute_gemm, GemmExecution, QuantizedActs};
pub use controller::{generate_control, ControlProgram, PsumRoute};
pub use energy::{microscopiq_energy, EnergyBreakdown, EnergyConstants};
pub use memory::{layer_traffic, schedule_layer, MemoryConfig, TrafficBreakdown};
pub use perf::{gemm_latency, workload_latency, AccelConfig, LatencyBreakdown};
pub use recon::{ColumnInput, ReCoN, RouteResult};
pub use recon_switch_level::{route_switch_level, SwitchLevelResult, SwitchOp};
pub use workload::{model_workload, GemmShape, Phase};
