//! Baseline accelerator models for the iso-accuracy comparisons of
//! Fig. 12 and the density comparison of Table 5: OliVe, GOBO, OLAccel,
//! AdaptivFloat, and ANT, each reduced to the parameters that drive
//! latency and energy — operating precision mix, effective bit width
//! (memory traffic), per-MAC energy, and outlier-machinery stalls.

use crate::energy::{EnergyBreakdown, EnergyConstants};
use crate::perf::AccelConfig;
use crate::workload::GemmShape;

/// An analytic baseline accelerator.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineAccel {
    /// Design name.
    pub name: &'static str,
    /// Weight bits the design needs for iso-accuracy with W4A4
    /// MicroScopiQ (Fig. 12(a) precision assignment, averaged).
    pub iso_weight_bits: f64,
    /// Effective bit width of its weight memory format.
    pub ebw: f64,
    /// Per-MAC energy (pJ) at its operating precision.
    pub mac_pj: f64,
    /// MACs per cycle on a 64×64 array at the iso precision (bit-serial /
    /// fused designs lose columns at higher widths).
    pub macs_per_cycle: f64,
    /// Multiplier ≥ 1 for outlier encode/decode or outlier-PE
    /// serialization stalls.
    pub stall: f64,
}

/// The baseline set of Fig. 12, with the iso-accuracy precision
/// assignments described in §7.5 and per-MAC energies from the shared
/// constant table.
pub fn iso_accuracy_baselines(k: &EnergyConstants) -> Vec<BaselineAccel> {
    vec![
        BaselineAccel {
            // OliVe at iso-accuracy needs 4-bit everywhere plus 8-bit on
            // the outlier-heavy layers (Table 2 shows W4 degradation).
            name: "OliVe",
            iso_weight_bits: 5.0,
            ebw: 5.0,
            mac_pj: k.mac_int4_pj * 1.20, // enc/dec adders on every access
            macs_per_cycle: 4096.0 * 4.0 / 5.0,
            stall: 1.08,
        },
        BaselineAccel {
            // GOBO: 3-bit centroids + FP32 side-band outliers; large PEs.
            name: "GOBO",
            iso_weight_bits: 3.0,
            ebw: 15.6,
            mac_pj: k.mac_int8_pj, // wide group PEs
            macs_per_cycle: 4096.0,
            stall: 1.15, // outlier-PE serialization + unaligned access
        },
        BaselineAccel {
            // OLAccel: 4-bit dense + 16-bit outlier PEs.
            name: "OLAccel",
            iso_weight_bits: 4.5,
            ebw: 4.7,
            mac_pj: k.mac_int4_pj * 1.35,
            macs_per_cycle: 4096.0 * 4.0 / 4.5,
            stall: 1.10,
        },
        BaselineAccel {
            // AdaptivFloat: FP8 PEs throughout.
            name: "AdaptivFloat",
            iso_weight_bits: 8.0,
            ebw: 8.0,
            mac_pj: k.mac_fp16_pj * 0.5,
            macs_per_cycle: 4096.0 * 4.0 / 8.0,
            stall: 1.0,
        },
        BaselineAccel {
            // ANT: 4-bit flint with some 8-bit layers.
            name: "ANT",
            iso_weight_bits: 4.8,
            ebw: 4.8,
            mac_pj: k.mac_int4_pj * 1.15,
            macs_per_cycle: 4096.0 * 4.0 / 4.8,
            stall: 1.05,
        },
    ]
}

/// Latency (cycles) of a baseline accelerator on a workload, mirroring the
/// MicroScopiQ tiling model with the baseline's throughput, EBW, and
/// stalls.
pub fn baseline_latency(workload: &[GemmShape], b: &BaselineAccel, cfg: &AccelConfig) -> f64 {
    let bytes_per_cycle = cfg.hbm_gbps.min(cfg.sram_gbps * 4.0) / cfg.freq_ghz;
    let mut total = 0.0;
    for shape in workload {
        let cols_eff = (b.macs_per_cycle / cfg.rows as f64).max(1.0);
        let row_tiles = shape.k.div_ceil(cfg.rows) as f64;
        let col_tiles = (shape.m as f64 / cols_eff).ceil();
        let tiles = row_tiles * col_tiles;
        // Same model as perf::gemm_latency: tiles double-buffered, one
        // fill/drain per shape.
        let compute = shape.n as f64 * b.stall;
        let fill = cfg.rows as f64 + cols_eff;
        let tile_weight_bytes = cfg.rows as f64 * cols_eff * b.ebw / 8.0;
        let mem = tile_weight_bytes / bytes_per_cycle;
        total += (tiles * compute.max(mem) + fill) * shape.repeats as f64;
    }
    total
}

/// Energy (mJ breakdown) of a baseline accelerator on a workload.
pub fn baseline_energy(
    workload: &[GemmShape],
    b: &BaselineAccel,
    act_bits: u32,
    k: &EnergyConstants,
) -> EnergyBreakdown {
    let macs: f64 = workload.iter().map(|g| g.macs() as f64).sum();
    let weight_elems: f64 = workload.iter().map(|g| g.weight_elements() as f64).sum();
    let act_elems: f64 = workload
        .iter()
        .map(|g| ((g.k + g.m) * g.n * g.repeats) as f64)
        .sum();
    let compute_mj = macs * b.mac_pj * b.stall * 1e-9;
    let weight_bytes = weight_elems * b.ebw / 8.0;
    let act_bytes = act_elems * act_bits as f64 / 8.0;
    let dram_mj = (weight_bytes + act_bytes) * k.dram_pj_per_byte * 1e-9;
    let sram_mj = (weight_bytes * 2.0 + act_bytes * 2.0) * k.sram_pj_per_byte * 1e-9;
    let dynamic = compute_mj + dram_mj + sram_mj;
    EnergyBreakdown {
        compute_mj,
        recon_mj: 0.0,
        sram_mj,
        dram_mj,
        static_mj: dynamic * k.static_fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::energy::microscopiq_energy;
    use crate::perf::workload_latency;
    use crate::workload::{model_workload, Phase};
    use microscopiq_fm::zoo::model;

    fn workload() -> Vec<GemmShape> {
        model_workload(&model("LLaMA-3-8B"), Phase::Prefill(256))
    }

    #[test]
    fn microscopiq_v2_outpaces_every_baseline() {
        // Fig. 12(b): MS-v2 (bb=2 dominant) wins against all baselines.
        let k = EnergyConstants::default();
        let wl = workload();
        let cfg = AccelConfig::paper_64x64(2, 1);
        let ms = workload_latency(&wl, &cfg, 2.4, 0.05).total_cycles;
        for b in iso_accuracy_baselines(&k) {
            let bl = baseline_latency(&wl, &b, &cfg);
            assert!(ms < bl, "MicroScopiQ v2 ({ms}) must beat {} ({bl})", b.name);
        }
    }

    #[test]
    fn speedup_magnitudes_are_in_paper_range() {
        // Paper: v2 averages ≈2.47× over the baseline pool; allow a broad
        // band since our workload mixes differ.
        let k = EnergyConstants::default();
        let wl = workload();
        let cfg = AccelConfig::paper_64x64(2, 1);
        let ms = workload_latency(&wl, &cfg, 2.4, 0.05).total_cycles;
        let mean_baseline: f64 = iso_accuracy_baselines(&k)
            .iter()
            .map(|b| baseline_latency(&wl, b, &cfg))
            .sum::<f64>()
            / 5.0;
        let speedup = mean_baseline / ms;
        assert!(
            speedup > 1.5 && speedup < 5.0,
            "v2 average speedup {speedup}"
        );
    }

    #[test]
    fn microscopiq_energy_beats_baselines() {
        // Fig. 12(c): MS-v2 has the lowest energy.
        let k = EnergyConstants::default();
        let wl = workload();
        let cfg = AccelConfig::paper_64x64(2, 1);
        let lat = workload_latency(&wl, &cfg, 2.4, 0.05);
        let ms = microscopiq_energy(&wl, &cfg, &lat, 2.4, 0.05, 4, &k).total_mj();
        for b in iso_accuracy_baselines(&k) {
            let be = baseline_energy(&wl, &b, 4, &k).total_mj();
            assert!(ms < be, "MS {ms} mJ must beat {} {be} mJ", b.name);
        }
    }

    #[test]
    fn gobo_pays_for_its_ebw_in_memory_energy() {
        let k = EnergyConstants::default();
        let wl = workload();
        let all = iso_accuracy_baselines(&k);
        let gobo = all.iter().find(|b| b.name == "GOBO").unwrap();
        let olive = all.iter().find(|b| b.name == "OliVe").unwrap();
        let eg = baseline_energy(&wl, gobo, 4, &k);
        let eo = baseline_energy(&wl, olive, 4, &k);
        assert!(
            eg.dram_mj > eo.dram_mj * 2.0,
            "{} vs {}",
            eg.dram_mj,
            eo.dram_mj
        );
    }
}
