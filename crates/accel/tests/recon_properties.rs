//! Property tests: the switch-level butterfly and the direct functional
//! ReCoN model must agree on every legal merge pattern, and the functional
//! array must stay exact under random quantized layers.

use microscopiq_accel::array::{execute_gemm, QuantizedActs};
use microscopiq_accel::recon::{ColumnInput, ReCoN};
use microscopiq_accel::recon_switch_level::route_switch_level;
use microscopiq_core::config::{GroupAxis, QuantConfig};
use microscopiq_core::microblock::PermEntry;
use microscopiq_core::solver::solve;
use microscopiq_core::traits::LayerTensors;
use microscopiq_linalg::{Matrix, SeededRng};
use proptest::prelude::*;

/// Strategy: up to `n/2` disjoint (upper, lower) pairs over `n` columns.
fn merge_pattern(n: usize) -> impl Strategy<Value = Vec<(usize, usize)>> {
    prop::collection::vec(any::<u64>(), 0..=n / 2).prop_map(move |seeds| {
        let mut free: Vec<usize> = (0..n).collect();
        let mut pairs = Vec::new();
        for seed in seeds {
            if free.len() < 2 {
                break;
            }
            let u = free.remove((seed as usize) % free.len());
            let l = free.remove((seed as usize >> 16) % free.len());
            pairs.push((u, l));
        }
        pairs
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn switch_level_equals_direct_model(
        pairs in merge_pattern(8),
        res_seed in any::<u64>(),
        mb in prop_oneof![Just(2u32), Just(4u32)],
    ) {
        let mut rng = SeededRng::new(res_seed);
        let mut inputs = vec![ColumnInput::Psum(0); 8];
        for slot in inputs.iter_mut() {
            *slot = ColumnInput::Psum(rng.below(1000) as i64 - 500);
        }
        let mut perm = Vec::new();
        let mut iacts = Vec::new();
        for &(u, l) in &pairs {
            inputs[u] = ColumnInput::Offload {
                res: rng.below(64) as i64 - 32,
                iacc: rng.below(1000) as i64 - 500,
            };
            inputs[l] = ColumnInput::Offload {
                res: rng.below(64) as i64 - 32,
                iacc: 0,
            };
            perm.push(PermEntry { upper_loc: u as u8, lower_loc: l as u8 });
            iacts.push(rng.below(255) as i64 - 127);
        }
        let direct = ReCoN::new(8).route(&inputs, &perm, &iacts, mb);
        let switched = route_switch_level(8, &inputs, &perm, &iacts, mb);
        prop_assert_eq!(switched.outputs, direct.outputs);
    }

    #[test]
    fn functional_gemm_always_matches_reference(
        seed in 0u64..500,
        rows in 8usize..32,
        bits in prop_oneof![Just(2u32), Just(4u32)],
    ) {
        let mut rng = SeededRng::new(seed);
        let cols = 16;
        let mut w = Matrix::from_fn(rows, cols, |_, _| rng.normal(0.0, 0.02));
        for _ in 0..(rows * cols / 30) {
            let r = rng.below(rows);
            let c = rng.below(cols);
            w[(r, c)] = rng.sign() * rng.uniform_range(0.15, 0.5);
        }
        let x = Matrix::from_fn(cols, 24, |_, _| rng.normal(0.0, 1.0));
        let layer = LayerTensors::new(w, x).unwrap();
        let cfg = QuantConfig::builder(bits)
            .macro_block(16)
            .row_block(16)
            .group_axis(GroupAxis::OutputChannel)
            .build()
            .unwrap();
        let packed = solve(&layer, &cfg).unwrap().packed.unwrap();
        let acts = QuantizedActs::from_f64(&Matrix::from_fn(cols, 3, |_, _| rng.normal(0.0, 1.0)));
        let exec = execute_gemm(&packed, &acts);
        let reference = packed.dequantize().matmul(&acts.dequantize());
        prop_assert!(exec.outputs.frobenius_distance(&reference) < 1e-9);
    }
}
