//! Cross-crate integration tests: synthesize → quantize → pack → execute
//! on the accelerator → verify, plus method-ordering invariants across the
//! full stack.

use microscopiq::accel::array::{execute_gemm, QuantizedActs};
use microscopiq::baselines::{Gobo, Gptq, Olive, Rtn};
use microscopiq::core::config::{GroupAxis, QuantConfig};
use microscopiq::core::packed::PackedLayer;
use microscopiq::core::solver::solve;
use microscopiq::core::traits::LayerTensors;
use microscopiq::core::MicroScopiQ;
use microscopiq::fm::synth::synthesize_layer;
use microscopiq::fm::{evaluate_weight_only, model};
use microscopiq::linalg::{Matrix, SeededRng};

/// A small zoo layer for fast integration runs.
fn small_spec() -> microscopiq::fm::ModelSpec {
    let mut spec = model("LLaMA-3-8B");
    for l in &mut spec.layers {
        l.d_row = (l.d_row / 4).max(32);
        l.d_col = (l.d_col / 4).max(64);
    }
    spec
}

#[test]
fn synthetic_model_quantizes_end_to_end() {
    let spec = small_spec();
    let ms = MicroScopiQ::w2();
    let eval = evaluate_weight_only(&spec, &ms, 32).expect("evaluation");
    assert!(eval.mean_output_error() > 0.0 && eval.mean_output_error() < 1.0);
    assert!(eval.mean_ebw() >= 2.0 && eval.mean_ebw() < 4.0);
    assert!(eval.mean_outlier_fraction() > 0.0);
}

#[test]
fn microscopiq_beats_samewidth_baselines_on_outlier_tensors() {
    // The paper's core accuracy claim at 2 bits.
    let spec = small_spec();
    let ms = evaluate_weight_only(&spec, &MicroScopiQ::w2(), 32)
        .unwrap()
        .mean_output_error();
    let rtn = evaluate_weight_only(&spec, &Rtn::group(2, 128), 32)
        .unwrap()
        .mean_output_error();
    let olive2 = evaluate_weight_only(&spec, &Olive::new(2), 32)
        .unwrap()
        .mean_output_error();
    assert!(ms < rtn, "MicroScopiQ {ms} must beat RTN {rtn}");
    assert!(ms < olive2, "MicroScopiQ {ms} must beat OliVe {olive2}");
}

#[test]
fn microscopiq_w2_competes_with_gptq_w4_ebw() {
    // W2 MicroScopiQ's EBW (≈2.4) is far below GPTQ-W4's 4 bits while its
    // error stays in the same decade — the compression story of Table 1.
    let spec = small_spec();
    let ms = evaluate_weight_only(&spec, &MicroScopiQ::w2(), 32).unwrap();
    let gptq = evaluate_weight_only(&spec, &Gptq::new(4, 128), 32).unwrap();
    assert!(ms.mean_ebw() < gptq.mean_ebw() * 0.75);
    assert!(ms.mean_output_error() < gptq.mean_output_error() * 6.0);
}

#[test]
fn gobo_accuracy_high_but_ebw_high() {
    // Group-A tradeoff: GOBO must be accurate and expensive.
    let spec = small_spec();
    let gobo = evaluate_weight_only(&spec, &Gobo::new(4), 32).unwrap();
    let ms = evaluate_weight_only(&spec, &MicroScopiQ::w4(), 32).unwrap();
    assert!(gobo.mean_ebw() > ms.mean_ebw(), "GOBO pays side-band EBW");
}

#[test]
fn quantize_pack_serialize_execute_is_exact() {
    // The full hardware path: quantize (hardware axis) → pack → bytes →
    // unpack → functional array GEMM == dequantized reference.
    let spec = small_spec();
    let layer_spec = &spec.layers[0];
    let w = synthesize_layer(&spec, layer_spec);
    let mut rng = SeededRng::new(5);
    let x = Matrix::from_fn(w.cols(), 32, |_, _| rng.normal(0.0, 1.0));
    let layer = LayerTensors::new(w, x).unwrap();
    let cfg = QuantConfig::w2()
        .group_axis(GroupAxis::OutputChannel)
        .build()
        .unwrap();
    let packed = solve(&layer, &cfg).unwrap().packed.unwrap();
    let restored = PackedLayer::from_bytes(&packed.to_bytes()).unwrap();
    let acts = QuantizedActs::from_f64(&Matrix::from_fn(layer.d_col(), 4, |_, _| {
        rng.normal(0.0, 1.0)
    }));
    let exec = execute_gemm(&restored, &acts);
    let reference = restored.dequantize().matmul(&acts.dequantize());
    assert!(
        exec.outputs.frobenius_distance(&reference) < 1e-9,
        "array execution must be bit-exact after serialization round-trip"
    );
    assert!(exec.counters.merges > 0, "workload must exercise ReCoN");
}

#[test]
fn both_axes_agree_on_error_magnitude() {
    // The grouping-axis choice (DESIGN.md §2) shifts errors slightly but
    // not qualitatively.
    let spec = small_spec();
    let layer_spec = &spec.layers[0];
    let w = synthesize_layer(&spec, layer_spec);
    let mut rng = SeededRng::new(9);
    let x = Matrix::from_fn(w.cols(), 48, |_, _| rng.normal(0.0, 1.0));
    let layer = LayerTensors::new(w, x).unwrap();
    let err = |axis| {
        let cfg = QuantConfig::w2().group_axis(axis).build().unwrap();
        let out = solve(&layer, &cfg).unwrap();
        layer.weights.frobenius_distance(&out.dequantized) / layer.weights.frobenius_norm()
    };
    let dot = err(GroupAxis::DotProduct);
    let oc = err(GroupAxis::OutputChannel);
    // The synthesized outlier layout makes OutputChannel grouping pay a
    // consistent 2–3× penalty at 2 bits (block maxima absorb row outliers),
    // so "same magnitude" here means within one decade, not within 2×.
    assert!(
        (dot / oc) > 0.1 && (dot / oc) < 10.0,
        "axes diverge: dot={dot} oc={oc}"
    );
    assert!(dot.is_finite() && oc.is_finite());
}
