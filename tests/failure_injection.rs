//! Failure-injection integration tests: malformed inputs, corrupted
//! metadata, degenerate tensors, and serving-time faults (dropped
//! streams, expired deadlines, panicking workers) must fail loudly (or
//! degrade gracefully), never silently corrupt results or poison
//! unrelated requests.

use microscopiq::core::config::QuantConfig;
use microscopiq::core::packed::PackedLayer;
use microscopiq::core::solver::solve;
use microscopiq::core::traits::{LayerTensors, WeightQuantizer};
use microscopiq::core::{MicroScopiQ, QuantError};
use microscopiq::fm::{DequantGemm, PackedTinyFm, TinyFm, TinyFmConfig};
use microscopiq::linalg::{Matrix, SeededRng};
use microscopiq::runtime::{
    AdmissionPolicy, Deadline, GenRequest, RequestOptions, ServeError, Server, ServerConfig,
    Session, StreamEvent, SubmitError,
};
use std::time::Duration;

fn clean_layer(seed: u64) -> LayerTensors {
    let mut rng = SeededRng::new(seed);
    let w = Matrix::from_fn(8, 32, |_, _| rng.normal(0.0, 0.02));
    let x = Matrix::from_fn(32, 40, |_, _| rng.normal(0.0, 1.0));
    LayerTensors::new(w, x).unwrap()
}

#[test]
fn nan_weights_are_rejected_at_construction() {
    let mut rng = SeededRng::new(1);
    let mut w = Matrix::from_fn(4, 16, |_, _| rng.normal(0.0, 0.02));
    w[(2, 3)] = f64::NAN;
    let x = Matrix::from_fn(16, 8, |_, _| rng.normal(0.0, 1.0));
    assert!(matches!(
        LayerTensors::new(w, x),
        Err(QuantError::NonFiniteInput { tensor: "weights" })
    ));
}

#[test]
fn infinite_calibration_is_rejected() {
    let mut rng = SeededRng::new(2);
    let w = Matrix::from_fn(4, 16, |_, _| rng.normal(0.0, 0.02));
    let mut x = Matrix::from_fn(16, 8, |_, _| rng.normal(0.0, 1.0));
    x[(0, 0)] = f64::INFINITY;
    assert!(LayerTensors::new(w, x).is_err());
}

#[test]
fn every_truncation_point_is_detected() {
    let layer = clean_layer(3);
    let cfg = QuantConfig::w2()
        .macro_block(16)
        .row_block(16)
        .build()
        .unwrap();
    let packed = solve(&layer, &cfg).unwrap().packed.unwrap();
    let bytes = packed.to_bytes();
    for cut in 0..bytes.len() {
        let r = PackedLayer::from_bytes(&bytes[..cut]);
        assert!(r.is_err(), "truncation at {cut} went undetected");
    }
}

#[test]
fn random_byte_corruption_never_panics() {
    let layer = clean_layer(4);
    let cfg = QuantConfig::w2()
        .macro_block(16)
        .row_block(16)
        .build()
        .unwrap();
    let packed = solve(&layer, &cfg).unwrap().packed.unwrap();
    let bytes = packed.to_bytes().to_vec();
    let mut rng = SeededRng::new(5);
    for _ in 0..200 {
        let mut corrupted = bytes.clone();
        let pos = rng.below(corrupted.len());
        corrupted[pos] ^= 1 << rng.below(8);
        // Must either fail cleanly or decode to *something* — never panic.
        if let Ok(layer) = PackedLayer::from_bytes(&corrupted) {
            let _ = layer.effective_bit_width();
        }
    }
}

#[test]
fn zero_calibration_data_still_quantizes() {
    // All-zero calibration makes the Hessian pure damping — quantization
    // must still succeed (weights remain quantizable without curvature).
    let mut rng = SeededRng::new(6);
    let w = Matrix::from_fn(8, 32, |_, _| rng.normal(0.0, 0.02));
    let x = Matrix::zeros(32, 16);
    let layer = LayerTensors::new(w, x).unwrap();
    let out = MicroScopiQ::new(
        QuantConfig::w2()
            .macro_block(16)
            .row_block(16)
            .build()
            .unwrap(),
    )
    .quantize_layer(&layer);
    assert!(out.is_ok(), "degenerate calibration must not fail: {out:?}");
}

#[test]
fn constant_weight_rows_are_handled() {
    let mut rng = SeededRng::new(7);
    let mut w = Matrix::from_fn(8, 32, |_, _| 0.01);
    w[(0, 0)] = 0.011; // barely non-constant
    let x = Matrix::from_fn(32, 40, |_, _| rng.normal(0.0, 1.0));
    let layer = LayerTensors::new(w, x).unwrap();
    let out = MicroScopiQ::new(
        QuantConfig::w2()
            .macro_block(16)
            .row_block(16)
            .build()
            .unwrap(),
    )
    .quantize_layer(&layer)
    .unwrap();
    assert!(out.dequantized.as_slice().iter().all(|v| v.is_finite()));
}

#[test]
fn extreme_outlier_magnitudes_stay_finite() {
    let mut rng = SeededRng::new(8);
    let mut w = Matrix::from_fn(8, 32, |_, _| rng.normal(0.0, 0.02));
    w[(1, 1)] = 1e6;
    w[(2, 2)] = -1e6;
    let x = Matrix::from_fn(32, 40, |_, _| rng.normal(0.0, 1.0));
    let layer = LayerTensors::new(w, x).unwrap();
    let out = MicroScopiQ::new(
        QuantConfig::w2()
            .macro_block(16)
            .row_block(16)
            .build()
            .unwrap(),
    )
    .quantize_layer(&layer)
    .unwrap();
    assert!(out.dequantized.as_slice().iter().all(|v| v.is_finite()));
    // The giant outliers must be represented with bounded relative error.
    let rel = (out.dequantized[(1, 1)] - 1e6).abs() / 1e6;
    assert!(rel < 0.5, "extreme outlier error {rel}");
}

#[test]
fn invalid_configs_cannot_be_constructed() {
    assert!(QuantConfig::builder(3).build().is_err());
    assert!(QuantConfig::w2().micro_block(7).build().is_err());
    assert!(QuantConfig::w2().sigma_threshold(-1.0).build().is_err());
    assert!(QuantConfig::w2().clip_ratio(0.0).build().is_err());
}

// ---- serving failure modes -------------------------------------------

fn serving_model(seed: u64) -> PackedTinyFm {
    let cfg = TinyFmConfig {
        d_model: 32,
        n_heads: 2,
        d_ff: 64,
        n_layers: 2,
        vocab: 48,
    };
    let fm = TinyFm::teacher(cfg, seed);
    let mut rng = SeededRng::new(seed ^ 0xfa11);
    let calib: Vec<Vec<usize>> = (0..3).map(|_| fm.generate(8, 0.9, &mut rng)).collect();
    let q = MicroScopiQ::new(
        QuantConfig::w4()
            .macro_block(32)
            .row_block(32)
            .build()
            .unwrap(),
    );
    PackedTinyFm::quantize_from(&fm, &q, &calib).unwrap()
}

/// What the offline session produces for one request, run alone.
fn offline_tokens(model: &PackedTinyFm, req: &GenRequest) -> Vec<usize> {
    let mut session = Session::new(model.clone(), DequantGemm, 1);
    session.submit(req.clone());
    session.run_to_completion().remove(0).tokens
}

fn bystander_request() -> GenRequest {
    GenRequest {
        prompt: vec![1, 2, 3],
        max_new_tokens: 8,
        temperature: 0.8,
        seed: 11,
        ..Default::default()
    }
}

#[test]
fn dropped_stream_frees_slot_and_leaves_other_streams_unaffected() {
    let model = serving_model(60);
    let expected = offline_tokens(&model, &bystander_request());
    let server = Server::spawn(
        model,
        DequantGemm,
        ServerConfig {
            max_batch: 4,
            // Pace the worker so the client-side drop lands well before
            // the victim's 200-token budget could run out.
            pace: Duration::from_millis(2),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let handle = server.handle();
    let mut victim = handle
        .submit(GenRequest {
            prompt: vec![5, 6],
            max_new_tokens: 200,
            temperature: 0.8,
            seed: 12,
            ..Default::default()
        })
        .unwrap();
    let bystander = handle.submit(bystander_request()).unwrap();
    // Wait for generation to actually start, then hang up mid-stream.
    assert!(
        matches!(victim.next_event(), Some(StreamEvent::Token(_))),
        "victim must be mid-generation before the drop"
    );
    drop(victim);
    let result = bystander.collect().expect("bystander completes");
    assert_eq!(
        result.tokens, expected,
        "a dropped neighbour must not perturb another stream's output"
    );
    drop(handle);
    let report = server.shutdown();
    assert_eq!(report.cancelled, 1, "victim retired via cancellation");
    assert_eq!(report.served, 1);
    assert_eq!(
        report.final_kv_rows, 0,
        "the dropped request's KV cache must be reclaimed"
    );
}

#[test]
fn deadline_expires_mid_prefill_without_consuming_compute() {
    let model = serving_model(61);
    let bystander_req = bystander_request();
    let expected = offline_tokens(&model, &bystander_req);
    let server = Server::spawn(model, DequantGemm, ServerConfig::default()).unwrap();
    let handle = server.handle();
    let bystander = handle.submit(bystander_req.clone()).unwrap();
    // A zero-step deadline expires at the first sweep: the request is
    // retired before its prefill ever rides a decode step.
    let mut doomed = handle
        .submit_with(
            GenRequest {
                prompt: (0..40).map(|i| i % 48).collect(),
                max_new_tokens: 50,
                temperature: 0.8,
                seed: 13,
                ..Default::default()
            },
            RequestOptions {
                deadline: Some(Deadline::Steps(0)),
                ..RequestOptions::default()
            },
        )
        .unwrap();
    assert_eq!(
        doomed.next_event(),
        Some(StreamEvent::Error(ServeError::DeadlineExceeded)),
        "the only event on an expired stream is the deadline error"
    );
    assert_eq!(doomed.next_event(), None);
    let result = bystander.collect().expect("bystander completes");
    assert_eq!(result.tokens, expected);
    drop((doomed, handle));
    let report = server.shutdown();
    assert_eq!(report.expired, 1);
    assert_eq!(report.served, 1);
    assert_eq!(
        report.session.prefill_tokens,
        bystander_req.prompt.len(),
        "the expired request's 40-token prompt must never be prefilled"
    );
    assert_eq!(report.final_kv_rows, 0);
}

#[test]
fn deadline_expires_mid_chunked_prefill_and_reclaims_partial_kv() {
    let model = serving_model(64);
    let bystander_req = bystander_request();
    let expected = offline_tokens(&model, &bystander_req);
    let server = Server::spawn(
        model,
        DequantGemm,
        ServerConfig {
            max_batch: 4,
            // 40-token prompt at chunk 8 needs 5 steps; a 2-step deadline
            // expires while the request is parked mid-prefill with a
            // partial KV cache.
            prefill_chunk: 8,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let handle = server.handle();
    let bystander = handle.submit(bystander_req.clone()).unwrap();
    let mut doomed = handle
        .submit_with(
            GenRequest {
                prompt: (0..40).map(|i| i % 48).collect(),
                max_new_tokens: 50,
                temperature: 0.8,
                seed: 15,
                ..Default::default()
            },
            RequestOptions {
                deadline: Some(Deadline::Steps(2)),
                ..RequestOptions::default()
            },
        )
        .unwrap();
    assert_eq!(
        doomed.next_event(),
        Some(StreamEvent::Error(ServeError::DeadlineExceeded)),
        "a request parked mid-prefill expires without ever emitting a token"
    );
    let result = bystander.collect().expect("bystander completes");
    assert_eq!(result.tokens, expected);
    drop((doomed, handle));
    let report = server.shutdown();
    assert_eq!(report.expired, 1);
    assert_eq!(report.served, 1);
    assert!(
        report.session.prefill_tokens < 40 + bystander_req.prompt.len(),
        "the doomed prompt must never be fully prefilled (got {} prefill tokens)",
        report.session.prefill_tokens
    );
    assert_eq!(
        report.final_kv_rows, 0,
        "the partial prefill's KV rows must be reclaimed"
    );
}

#[test]
fn worker_panic_faults_only_the_affected_stream() {
    let model = serving_model(62);
    let bystander_req = bystander_request();
    let expected = offline_tokens(&model, &bystander_req);
    let server = Server::spawn(model, DequantGemm, ServerConfig::default()).unwrap();
    let handle = server.handle();
    let bystander = handle.submit(bystander_req).unwrap();
    // Prompt validation runs on the worker thread: an out-of-vocabulary
    // prompt panics there, and the panic must surface on this stream
    // alone.
    let poisoned = handle
        .submit(GenRequest {
            prompt: vec![1_000_000],
            max_new_tokens: 4,
            temperature: 0.8,
            seed: 14,
            ..Default::default()
        })
        .unwrap();
    match poisoned.collect() {
        Err(ServeError::WorkerPanicked(msg)) => {
            assert!(
                msg.contains("vocabulary"),
                "panic message should name the cause, got: {msg}"
            );
        }
        other => panic!("poisoned stream must fault with WorkerPanicked, got {other:?}"),
    }
    let result = bystander.collect().expect("bystander completes");
    assert_eq!(
        result.tokens, expected,
        "a neighbour's panic must not perturb this stream's output"
    );
    drop(handle);
    let report = server.shutdown();
    assert_eq!(report.faulted, 1);
    assert_eq!(report.served, 1);
    assert_eq!(report.final_kv_rows, 0);
}

#[test]
fn full_admission_queue_rejects_instead_of_blocking() {
    let model = serving_model(63);
    let server = Server::spawn(
        model,
        DequantGemm,
        ServerConfig {
            max_batch: 1,
            queue_capacity: 1,
            max_in_flight: 1,
            admission: AdmissionPolicy::Reject,
            // Slow steps keep the first request in flight while we probe
            // the queue.
            pace: Duration::from_millis(5),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let handle = server.handle();
    let req = |seed| GenRequest {
        prompt: vec![1, 2],
        max_new_tokens: 100,
        temperature: 0.8,
        seed,
        ..Default::default()
    };
    let first = handle.submit(req(1)).expect("first request admitted");
    // One slot in flight, one queue slot: saturating both must produce
    // QueueFull promptly rather than blocking this thread.
    let mut rejected = false;
    let mut parked = Vec::new();
    for seed in 2..20 {
        match handle.submit(req(seed)) {
            Ok(stream) => parked.push(stream),
            Err(SubmitError::QueueFull) => {
                rejected = true;
                break;
            }
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    assert!(rejected, "bounded queue must reject under overload");
    drop((first, parked, handle));
    let report = server.shutdown();
    assert_eq!(report.session.tokens_generated, report.session.steps);
}

// ---- wire-level failure injection ----------------------------------

/// A mid-stream TCP disconnect must cancel exactly the victim request:
/// the server maps the failed SSE write onto the drop-to-cancel path,
/// the bystander's stream stays bitwise identical to offline, and the
/// victim's KV cache drains to zero.
#[test]
fn tcp_disconnect_mid_stream_cancels_only_that_request() {
    use microscopiq::runtime::net::{HttpClient, HttpConfig, HttpServer, Json};
    use microscopiq::runtime::FleetConfig;

    let model = serving_model(70);
    let expected = offline_tokens(&model, &bystander_request());
    let server = HttpServer::bind(
        "127.0.0.1:0",
        model,
        |_| DequantGemm,
        HttpConfig {
            fleet: FleetConfig {
                workers: 1,
                server: ServerConfig {
                    max_batch: 4,
                    // Pace the worker so the hang-up lands well before
                    // the victim's token budget could run out.
                    pace: Duration::from_millis(2),
                    ..ServerConfig::default()
                },
                ..FleetConfig::default()
            },
            ..HttpConfig::default()
        },
    )
    .expect("bind");
    let addr = server.addr();

    let mut victim_client = HttpClient::connect(addr).expect("connect victim");
    let mut victim = victim_client
        .generate(r#"{"prompt":[5,6],"max_new_tokens":2000,"temperature":0.8,"seed":12}"#)
        .expect("victim stream");
    assert_eq!(victim.status, 200);

    let bystander = std::thread::spawn(move || {
        let mut client = HttpClient::connect(addr).expect("connect bystander");
        let stream = client
            .generate(r#"{"prompt":[1,2,3],"max_new_tokens":8,"temperature":0.8,"seed":11}"#)
            .expect("bystander stream");
        let events = stream.collect_events().expect("bystander events");
        let done = events.last().expect("done event");
        done.get("tokens")
            .and_then(Json::as_arr)
            .expect("tokens")
            .iter()
            .map(|t| t.as_usize().unwrap())
            .collect::<Vec<usize>>()
    });

    // The victim must be mid-generation before the hang-up.
    for _ in 0..4 {
        let ev = victim.next_event().expect("victim event").expect("token");
        assert!(
            ev.get("token").is_some(),
            "expected a token event, got {ev:?}"
        );
    }
    drop(victim);
    drop(victim_client); // abrupt TCP close mid-stream

    assert_eq!(
        bystander.join().expect("bystander thread"),
        expected,
        "a dropped neighbour must not perturb another stream's output"
    );

    // The cancelled victim's KV must drain to zero.
    let fleet = server.fleet();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while fleet.worker(0).kv_rows() > 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "victim KV never reclaimed: {} rows live",
            fleet.worker(0).kv_rows()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    drop(fleet);

    let report = server.shutdown();
    assert_eq!(report.lost(), 0);
    let worker = report.per_worker[0].as_ref().expect("worker report");
    assert_eq!(worker.cancelled, 1, "victim retired via cancellation");
    assert_eq!(worker.served, 1, "bystander finished normally");
    assert_eq!(worker.final_kv_rows, 0);
}

/// A panicking worker must drop out of the fleet's routing rotation
/// while the surviving workers keep serving bitwise-correct streams;
/// shutdown reports the loss instead of propagating the panic.
#[test]
fn fleet_worker_panic_is_removed_from_rotation() {
    use microscopiq::runtime::net::{Fleet, FleetConfig};

    let model = serving_model(71);
    let reqs: Vec<GenRequest> = (0..6)
        .map(|i| GenRequest {
            prompt: vec![1 + i, 2],
            max_new_tokens: 4,
            temperature: 0.8,
            seed: 100 + i as u64,
            ..Default::default()
        })
        .collect();
    let expected: Vec<Vec<usize>> = reqs.iter().map(|r| offline_tokens(&model, r)).collect();

    let fleet = Fleet::spawn(
        model,
        |_| DequantGemm,
        FleetConfig {
            workers: 2,
            server: ServerConfig::default(),
            ..FleetConfig::default()
        },
    )
    .expect("spawn fleet");
    let handle = fleet.handle();
    assert_eq!(handle.alive_workers(), 2);

    handle.worker(0).inject_worker_panic();
    // Wait for the worker thread to actually die: direct submissions
    // start failing with ServerClosed. A probe that races in before the
    // crash just dies with the worker (its stream is dropped here).
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        match handle.worker(0).submit(reqs[0].clone()) {
            Err(SubmitError::ServerClosed) => break,
            Ok(_racing_probe) => {}
            Err(e) => panic!("unexpected probe error: {e}"),
        }
        assert!(
            std::time::Instant::now() < deadline,
            "worker 0 never died after panic injection"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // The fleet keeps serving through the survivor, bitwise-correct.
    for (req, want) in reqs.iter().zip(&expected) {
        let (worker, stream) = handle.submit(req.clone()).expect("fleet still serves");
        assert_eq!(worker, 1, "dead worker must leave the rotation");
        let got = stream.collect().expect("stream completes");
        assert_eq!(&got.tokens, want, "survivor output diverged");
    }
    assert_eq!(handle.alive_workers(), 1);

    drop(handle);
    let report = fleet.shutdown();
    assert_eq!(report.lost(), 1, "exactly one worker lost");
    assert!(report.per_worker[0].is_none());
    assert!(
        report.panics[0].contains("injected worker panic"),
        "panic message propagated: {:?}",
        report.panics[0]
    );
    let survivor = report.per_worker[1].as_ref().expect("survivor report");
    assert_eq!(survivor.served, 6);
}
