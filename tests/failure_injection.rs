//! Failure-injection integration tests: malformed inputs, corrupted
//! metadata, and degenerate tensors must fail loudly (or degrade
//! gracefully), never silently corrupt results.

use microscopiq::core::config::QuantConfig;
use microscopiq::core::packed::PackedLayer;
use microscopiq::core::solver::solve;
use microscopiq::core::traits::{LayerTensors, WeightQuantizer};
use microscopiq::core::{MicroScopiQ, QuantError};
use microscopiq::linalg::{Matrix, SeededRng};

fn clean_layer(seed: u64) -> LayerTensors {
    let mut rng = SeededRng::new(seed);
    let w = Matrix::from_fn(8, 32, |_, _| rng.normal(0.0, 0.02));
    let x = Matrix::from_fn(32, 40, |_, _| rng.normal(0.0, 1.0));
    LayerTensors::new(w, x).unwrap()
}

#[test]
fn nan_weights_are_rejected_at_construction() {
    let mut rng = SeededRng::new(1);
    let mut w = Matrix::from_fn(4, 16, |_, _| rng.normal(0.0, 0.02));
    w[(2, 3)] = f64::NAN;
    let x = Matrix::from_fn(16, 8, |_, _| rng.normal(0.0, 1.0));
    assert!(matches!(
        LayerTensors::new(w, x),
        Err(QuantError::NonFiniteInput { tensor: "weights" })
    ));
}

#[test]
fn infinite_calibration_is_rejected() {
    let mut rng = SeededRng::new(2);
    let w = Matrix::from_fn(4, 16, |_, _| rng.normal(0.0, 0.02));
    let mut x = Matrix::from_fn(16, 8, |_, _| rng.normal(0.0, 1.0));
    x[(0, 0)] = f64::INFINITY;
    assert!(LayerTensors::new(w, x).is_err());
}

#[test]
fn every_truncation_point_is_detected() {
    let layer = clean_layer(3);
    let cfg = QuantConfig::w2()
        .macro_block(16)
        .row_block(16)
        .build()
        .unwrap();
    let packed = solve(&layer, &cfg).unwrap().packed.unwrap();
    let bytes = packed.to_bytes();
    for cut in 0..bytes.len() {
        let r = PackedLayer::from_bytes(&bytes[..cut]);
        assert!(r.is_err(), "truncation at {cut} went undetected");
    }
}

#[test]
fn random_byte_corruption_never_panics() {
    let layer = clean_layer(4);
    let cfg = QuantConfig::w2()
        .macro_block(16)
        .row_block(16)
        .build()
        .unwrap();
    let packed = solve(&layer, &cfg).unwrap().packed.unwrap();
    let bytes = packed.to_bytes().to_vec();
    let mut rng = SeededRng::new(5);
    for _ in 0..200 {
        let mut corrupted = bytes.clone();
        let pos = rng.below(corrupted.len());
        corrupted[pos] ^= 1 << rng.below(8);
        // Must either fail cleanly or decode to *something* — never panic.
        if let Ok(layer) = PackedLayer::from_bytes(&corrupted) {
            let _ = layer.effective_bit_width();
        }
    }
}

#[test]
fn zero_calibration_data_still_quantizes() {
    // All-zero calibration makes the Hessian pure damping — quantization
    // must still succeed (weights remain quantizable without curvature).
    let mut rng = SeededRng::new(6);
    let w = Matrix::from_fn(8, 32, |_, _| rng.normal(0.0, 0.02));
    let x = Matrix::zeros(32, 16);
    let layer = LayerTensors::new(w, x).unwrap();
    let out = MicroScopiQ::new(
        QuantConfig::w2()
            .macro_block(16)
            .row_block(16)
            .build()
            .unwrap(),
    )
    .quantize_layer(&layer);
    assert!(out.is_ok(), "degenerate calibration must not fail: {out:?}");
}

#[test]
fn constant_weight_rows_are_handled() {
    let mut rng = SeededRng::new(7);
    let mut w = Matrix::from_fn(8, 32, |_, _| 0.01);
    w[(0, 0)] = 0.011; // barely non-constant
    let x = Matrix::from_fn(32, 40, |_, _| rng.normal(0.0, 1.0));
    let layer = LayerTensors::new(w, x).unwrap();
    let out = MicroScopiQ::new(
        QuantConfig::w2()
            .macro_block(16)
            .row_block(16)
            .build()
            .unwrap(),
    )
    .quantize_layer(&layer)
    .unwrap();
    assert!(out.dequantized.as_slice().iter().all(|v| v.is_finite()));
}

#[test]
fn extreme_outlier_magnitudes_stay_finite() {
    let mut rng = SeededRng::new(8);
    let mut w = Matrix::from_fn(8, 32, |_, _| rng.normal(0.0, 0.02));
    w[(1, 1)] = 1e6;
    w[(2, 2)] = -1e6;
    let x = Matrix::from_fn(32, 40, |_, _| rng.normal(0.0, 1.0));
    let layer = LayerTensors::new(w, x).unwrap();
    let out = MicroScopiQ::new(
        QuantConfig::w2()
            .macro_block(16)
            .row_block(16)
            .build()
            .unwrap(),
    )
    .quantize_layer(&layer)
    .unwrap();
    assert!(out.dequantized.as_slice().iter().all(|v| v.is_finite()));
    // The giant outliers must be represented with bounded relative error.
    let rel = (out.dequantized[(1, 1)] - 1e6).abs() / 1e6;
    assert!(rel < 0.5, "extreme outlier error {rel}");
}

#[test]
fn invalid_configs_cannot_be_constructed() {
    assert!(QuantConfig::builder(3).build().is_err());
    assert!(QuantConfig::w2().micro_block(7).build().is_err());
    assert!(QuantConfig::w2().sigma_threshold(-1.0).build().is_err());
    assert!(QuantConfig::w2().clip_ratio(0.0).build().is_err());
}
