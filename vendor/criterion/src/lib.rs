//! Offline vendored subset of the `criterion` crate.
//!
//! The build environment has no registry access, so this workspace ships
//! the slice of the `criterion` API its benches use: [`Criterion`],
//! [`Bencher::iter`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros (both the struct-style and positional forms). Measurement is a
//! simple calibrated mean over `sample_size` samples — no outlier
//! analysis, plots, or baselines.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Benchmark driver: holds configuration and prints one line per bench.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    target_sample_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            target_sample_time: Duration::from_millis(20),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
            target_sample_time: self.target_sample_time,
        };
        f(&mut bencher);
        let mut samples = bencher.samples;
        if samples.is_empty() {
            println!("{name:<44} (no samples)");
            return self;
        }
        samples.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite times"));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let median = samples[samples.len() / 2];
        println!(
            "{name:<44} mean {:>12}  median {:>12}  ({} samples)",
            format_ns(mean),
            format_ns(median),
            samples.len()
        );
        self
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Times closures for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
    target_sample_time: Duration,
}

impl Bencher {
    /// Benchmarks `f`: calibrates iterations per sample so each sample
    /// runs near the target sample time, then records per-call mean
    /// nanoseconds for `sample_size` samples.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Calibration: time a single call to pick the iteration count.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let per_sample = (self.target_sample_time.as_nanos() / once.as_nanos()).clamp(1, 100_000);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(f());
            }
            let elapsed = start.elapsed();
            self.samples
                .push(elapsed.as_nanos() as f64 / per_sample as f64);
        }
    }
}

/// Declares a benchmark group function (both upstream forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("sum_1_to_100", |b| b.iter(|| (1..=100u64).sum::<u64>()));
    }

    #[test]
    fn group_and_bencher_run() {
        let mut c = Criterion::default().sample_size(3);
        sample_bench(&mut c);
    }

    #[test]
    fn formatting_scales() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(12_000_000_000.0).ends_with("s"));
    }
}
