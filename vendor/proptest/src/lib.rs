//! Offline vendored subset of the `proptest` crate.
//!
//! The build environment has no registry access, so this workspace ships
//! the slice of the `proptest` API its property tests use: the
//! [`proptest!`] macro (with optional `#![proptest_config(..)]`), range
//! and [`Just`] strategies, [`prop_oneof!`], `prop::collection::vec`,
//! [`any`](arbitrary::any), `prop_map`, and the `prop_assert*` macros.
//!
//! Differences from upstream, by design: no shrinking (a failing case
//! reports its exact inputs instead of a minimized one) and a fixed
//! deterministic seed per test derived from the test name, so CI failures
//! reproduce locally.

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A generator of values of one type. Object-safe; no shrinking.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }
    }

    /// Boxes a strategy, unifying heterogeneous strategies of one value
    /// type (used by [`prop_oneof!`](crate::prop_oneof)).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Strategy yielding one fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.sample(rng))
        }
    }

    /// Uniform choice between boxed alternative strategies.
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Creates a union over non-empty alternatives.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs an alternative");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for ::std::ops::Range<f32> {
        type Value = f32;

        fn sample(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.unit_f64() as f32
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` — the standard strategy for a type.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> u8 {
            rng.next_u64() as u8
        }
    }

    impl Arbitrary for u16 {
        fn arbitrary(rng: &mut TestRng) -> u16 {
            rng.next_u64() as u16
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Arbitrary for i32 {
        fn arbitrary(rng: &mut TestRng) -> i32 {
            rng.next_u64() as i32
        }
    }

    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut TestRng) -> i64 {
            rng.next_u64() as i64
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> usize {
            rng.next_u64() as usize
        }
    }

    /// Strategy form of [`Arbitrary`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive length bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<T>` with per-case random length.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Case execution: config, RNG, and failure type.

    /// Per-`proptest!` configuration.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// A failed property with its message.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Creates a failure.
        pub fn fail(msg: String) -> Self {
            Self(msg)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic per-test random source (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from raw state.
        pub fn new(seed: u64) -> Self {
            Self { state: seed }
        }

        /// Next uniform 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform integer in `[0, n)`.
        ///
        /// # Panics
        ///
        /// Panics if `n == 0`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below(0)");
            self.next_u64() % n
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Drives the cases of one `proptest!` test.
    #[derive(Debug)]
    pub struct TestRunner {
        config: ProptestConfig,
        rng: TestRng,
    }

    impl TestRunner {
        /// Creates a runner with a deterministic stream per test name.
        pub fn new(config: ProptestConfig, test_name: &str) -> Self {
            // FNV-1a over the name: stable across runs and platforms.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            Self {
                config,
                rng: TestRng::new(h),
            }
        }

        /// Number of cases to run.
        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        /// The case RNG.
        pub fn rng(&mut self) -> &mut TestRng {
            &mut self.rng
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `body` over sampled inputs. An optional
/// leading `#![proptest_config(expr)]` sets the case count.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner =
                    $crate::test_runner::TestRunner::new($cfg, stringify!($name));
                for case in 0..runner.cases() {
                    $(let $arg =
                        $crate::strategy::Strategy::sample(&($strat), runner.rng());)+
                    let inputs = [
                        $(format!("{} = {:?}", stringify!($arg), &$arg)),+
                    ].join(", ");
                    let outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name), case + 1, runner.cases(), e, inputs,
                        );
                    }
                }
            }
        )*
    };
}

/// Uniform choice between alternative strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($s)),+])
    };
}

/// Property assertion: fails the current case (with formatted context)
/// instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), lhs, rhs
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(*lhs == *rhs, $($fmt)+);
    }};
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Namespace mirror so `prop::collection::vec(..)` resolves.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..=9, y in -4i64..5, z in 0.25f64..0.75) {
            prop_assert!((3..=9).contains(&x));
            prop_assert!((-4..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&z));
        }

        #[test]
        fn vec_sizes_and_oneof(v in prop::collection::vec(0u8..=1, 2..=5),
                               pick in prop_oneof![Just(10u32), 20u32..30]) {
            prop_assert!(v.len() >= 2 && v.len() <= 5);
            prop_assert!(pick == 10 || (20..30).contains(&pick));
        }

        #[test]
        fn map_applies(doubled in (1usize..50).prop_map(|n| n * 2)) {
            prop_assert_eq!(doubled % 2, 0);
        }

        #[test]
        fn any_bool_is_sampled(b in any::<bool>()) {
            let as_int = u8::from(b);
            prop_assert!(as_int <= 1);
        }
    }

    #[test]
    fn exact_size_vec() {
        use crate::strategy::Strategy;
        let mut rng = crate::test_runner::TestRng::new(1);
        let v = collection::vec(any::<bool>(), 8).sample(&mut rng);
        assert_eq!(v.len(), 8);
    }

    mod failing {
        proptest! {
            #[test]
            #[should_panic(expected = "failed at case")]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
    }
}
