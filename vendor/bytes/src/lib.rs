//! Offline vendored subset of the `bytes` crate.
//!
//! The build environment has no registry access, so this workspace ships
//! the small slice of the `bytes` API it actually uses: [`Bytes`],
//! [`BytesMut`], and the [`Buf`]/[`BufMut`] cursor traits with big-endian
//! integer accessors (matching the upstream crate's defaults). Semantics
//! follow the upstream crate for the implemented surface; anything beyond
//! it is intentionally absent.

use std::ops::Deref;

/// An immutable, cheaply cloneable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bytes {
    data: std::sync::Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self { data: [].into() }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies into an owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: v.into() }
    }
}

/// A growable byte buffer with big-endian put accessors.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self { data: Vec::new() }
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data.into(),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Write cursor over a growable buffer (big-endian integer encoders).
pub trait BufMut {
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read cursor over a byte slice (big-endian integer decoders).
///
/// # Panics
///
/// Like the upstream crate, the `get_*` accessors panic when the buffer
/// has fewer bytes than requested; callers check [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads `dst.len()` bytes, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = BytesMut::new();
        buf.put_u8(0xAB);
        buf.put_u16(0x1234);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(0x0102_0304_0506_0708);
        buf.put_slice(b"xy");
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.remaining(), 17);
        assert_eq!(cursor.get_u8(), 0xAB);
        assert_eq!(cursor.get_u16(), 0x1234);
        assert_eq!(cursor.get_u32(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64(), 0x0102_0304_0506_0708);
        let mut tail = [0u8; 2];
        cursor.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xy");
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut cursor: &[u8] = &[1];
        let _ = cursor.get_u16();
    }

    #[test]
    fn bytes_indexing_and_vec() {
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(&b[..2], &[1, 2]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert!(!b.is_empty());
    }
}
