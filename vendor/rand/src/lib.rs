//! Offline vendored subset of the `rand` crate.
//!
//! The build environment has no registry access, so this workspace ships
//! the small slice of the `rand` API it uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], and the [`RngExt`] accessors
//! `random::<f64>()` / `random_range(Range<usize>)`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction the upstream small RNGs use. Streams are deterministic per
//! seed but are **not** bit-compatible with upstream `StdRng`; everything
//! in this workspace that depends on exact streams derives its expectations
//! from the same generator, so determinism (not upstream parity) is the
//! contract.

/// Core random source: produces uniformly distributed `u64` words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Seeding constructor (subset of upstream `SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a generator via [`RngExt::random`].
pub trait StandardUniform: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardUniform for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Convenience sampling methods (upstream `Rng`/`RngExt` surface).
pub trait RngExt: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform integer in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn random_range(&mut self, range: std::ops::Range<usize>) -> usize {
        let span = range.end.checked_sub(range.start).filter(|&s| s > 0);
        let span = span.expect("cannot sample from empty range") as u64;
        // Debiased multiply-shift (Lemire); rejection keeps it exact.
        let zone = u64::MAX - u64::MAX % span;
        loop {
            let word = self.next_u64();
            if word < zone {
                return range.start + (word % span) as usize;
            }
        }
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for upstream
    /// `StdRng`; deterministic per seed, not bit-compatible upstream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                state: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            self.state = [s0, s1, s2, s3.rotate_left(45)];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random::<f64>();
            assert!((0.0..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn range_respects_bounds_and_hits_all() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.random_range(0..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.random_range(3..3);
    }
}
