//! MicroScopiQ — outlier-aware microscaling quantization for foundational
//! models, with a functional + analytic accelerator simulator.
//!
//! This façade crate re-exports the workspace members; see each crate for
//! its own documentation:
//!
//! * [`core`] — the quantization framework (the paper's contribution);
//! * [`mx`] — MX-INT / MX-FP data formats;
//! * [`linalg`] — dense matrix / Cholesky / stats substrate;
//! * [`fm`] — synthetic foundational-model zoo and evaluation;
//! * [`baselines`] — GPTQ, AWQ, OliVe, GOBO, OmniQuant-GS, Atom, SDQ, …;
//! * [`accel`] — PE array, ReCoN NoC, perf/energy/area models;
//! * [`gpu`] — A100-class execution-path models;
//! * [`runtime`] — packed-weight inference engine: fused dequant-GEMM,
//!   decoded-block cache, parallel tiled execution, batched TinyFM
//!   serving.
//!
//! # Examples
//!
//! ```
//! use microscopiq::core::{MicroScopiQ, QuantConfig};
//! use microscopiq::core::traits::{LayerTensors, WeightQuantizer};
//! use microscopiq::linalg::{Matrix, SeededRng};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = SeededRng::new(1);
//! let w = Matrix::from_fn(16, 128, |_, _| rng.normal(0.0, 0.02));
//! let x = Matrix::from_fn(128, 64, |_, _| rng.normal(0.0, 1.0));
//! let layer = LayerTensors::new(w, x)?;
//! let result = MicroScopiQ::w2().quantize_layer(&layer)?;
//! assert!(result.stats.effective_bit_width >= 2.0);
//! # Ok(())
//! # }
//! ```

pub use microscopiq_accel as accel;
pub use microscopiq_baselines as baselines;
pub use microscopiq_core as core;
pub use microscopiq_fm as fm;
pub use microscopiq_gpu as gpu;
pub use microscopiq_linalg as linalg;
pub use microscopiq_mx as mx;
pub use microscopiq_runtime as runtime;
